"""Pluggable execution backends for the sharded scale-out ingest path.

:class:`~repro.runtime.sharded.ShardedSampler` runs S independent
coordinator groups over disjoint key spaces.  An :class:`ExecutionBackend`
makes the ingest strategy a configuration choice (``SamplerConfig.executor``):

* :class:`SerialExecutor` — the default: every group's sub-batch is
  delivered in-process, run-major, sharing one warmed sampling-hash
  column.  ``critical_path_seconds`` stays a *simulated* quantity (max of
  per-group serial timers).
* :class:`ThreadExecutor` — a thread pool over the same per-group plans.
  Groups are mutated in place (threads share the parent's heap, so there
  is nothing to ship or copy), and the NumPy kernels release the GIL, so
  the columnar hot loops overlap across cores at zero serialization
  cost.  Python-level bookkeeping still serializes on the GIL — this is
  the cheap middle ground, not the scale-out backend.
* :class:`ProcessExecutor` — a ``multiprocessing`` pool of ``W`` worker
  processes.  Each batch, every group's column slices (or tuple
  sub-batches) are pickled across the pipe together with the group's
  construction recipe and full ``state_dict``; the worker rebuilds the
  group, replays the plan, and returns (pickles) the new state.  Simple
  and stateless, but the per-batch pickle tax caps its speedup — the
  backend's instrumented ``pickle_bytes``/``ipc_bytes`` counters make
  that tax a measured quantity.
* :class:`SharedMemoryExecutor` — persistent workers plus zero-copy
  columns, the backend that kills the pickle tax.  See the protocol
  below.

The persistent-worker protocol (``executor="shm"``)
---------------------------------------------------

``W`` long-lived worker processes each own ``groups[g] for g % W == w``
of every participating sampler and talk to the parent over a duplex pipe
with strict request/reply framing.  Per sampler, a *session* tracks
where the canonical group state lives:

* ``adopt`` — on a session's first batch (or after any parent-side
  mutation), the parent ships each group's ``(config, state_dict)`` to
  its worker once; the worker rebuilds the group and keeps it alive
  across batches.  State crosses the pipe here and nowhere else.
* ``ingest_columns`` — the steady-state hot path.  The parent routes the
  batch (one vectorized pass), warms the shared sampling-hash column,
  concatenates the per-group sub-runs into three ``/dev/shm`` blocks
  (items, sites, hashes — written once), and sends only *plan metadata*:
  block names plus per-group ``(slot, None) | (None, (offset, length))``
  tasks.  Workers attach, build :class:`~repro.core.events.EventBatch`
  views over the mapped columns (zero copies, the parent-warmed hash
  slice adopted via ``adopt_hash_column``), replay, and reply with their
  measured per-group ingest seconds.  The parent unlinks the blocks as
  soon as every worker has replied — a batch's blocks never outlive the
  call, even on error.
* ``collect`` — on ``sample()``/``stats()``/``state_dict()``/``close()``
  the parent pulls the groups' ``state_dict`` back and re-synchronizes
  its own copies (queries always run against parent-side groups).
  Parent-side mutation (``observe``, ``advance``, ``load_state``)
  additionally *invalidates* the session so the next batch re-adopts.

Results are **bit-identical** across all four backends: plans are built
by the same routing pass, groups share no state, every backend replays
the exact serial per-group delivery order, and the sampling hash is a
pure function of (seed, algorithm, item) wherever it is computed.  The
property suite in ``tests/test_properties.py`` pins ``sample()``,
``stats()``, and the full ``state_dict`` across backends for every
``sharded:*`` variant.

Failure and lifecycle semantics of the parallel backends (crash-replay):

* Every in-flight batch plan is **retained until its worker acknowledges
  it** — per batch for the process pool (whose replies double as acks),
  and in a per-group replay log since the last sync for the persistent
  shm workers.  When a worker dies, the executor tears the remaining
  workers down and rebuilds each crashed worker's groups from the
  parent's last-synchronized state by replaying the pending plans
  in-process — the recovered groups are **bit-identical to a
  never-crashed run** (same delivery order, same shared sampling hash),
  so no acknowledged data is ever lost.  Ingest calls simply succeed;
  the ``recoveries`` counter records that a replay happened, and the
  next batch respawns workers and re-adopts.  Only a *deterministic*
  in-worker protocol error (a poisoned plan) still raises — replaying it
  in-process raises the same underlying error.
* The shm replay log is trimmed at every sync/adopt boundary and, to
  bound memory on sync-free workloads, the executor checkpoints (a
  partial sync) every ``checkpoint_batches`` batches per session.
* Shared-memory blocks are created/unlinked strictly per batch inside
  ``try/finally``; worker terminations are additionally registered via
  ``weakref.finalize`` (which hooks interpreter exit like ``atexit``)
  and the workers are daemonic, so neither an un-``close()``d executor
  nor a hard exit leaks ``/dev/shm`` segments or processes.
* Executors are context managers: ``with SharedMemoryExecutor() as ex:``
  guarantees ``close()`` (which first collects every live session's
  state back into its sampler).

Two documented backend differences, neither visible on a valid stream:
a non-monotone slot stamp raises *before* any delivery under the
plan-building backends (thread/process/shm), while the serial generic
loop has already delivered the earlier runs by the time it raises; and
groups rewired onto a non-default transport (``DelayedNetwork``) are
rebuilt by process/shm workers on the config's default synchronous
network — keep the serial or thread backend for delayed-transport
studies.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import os
import pickle
import sys
import time
import weakref
from abc import ABC, abstractmethod
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import resource_tracker, shared_memory
from multiprocessing.connection import Connection
from typing import TYPE_CHECKING, Any, Optional

import numpy as np
import numpy.typing as npt

from ..core.events import EventBatch
from ..core.protocol import EXECUTORS, Sampler, SamplerConfig
from ..errors import ConfigurationError, ExecutorError, ProtocolError
from ..hashing.unit import UnitHasher

if TYPE_CHECKING:  # sharded imports this module; annotate without a cycle
    from .sharded import ShardedSampler

__all__ = [
    "ExecutionBackend",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "SharedMemoryExecutor",
    "make_executor",
]

#: One group's replay plan: ``(slot, None)`` advances, ``(None, batch)``
#: delivers (a tuple sub-batch or a columnar sub-run).
GroupPlan = list[tuple[Optional[int], Any]]

#: What ships to a process-pool worker: ``(config_dict, state_dict, plan)``.
WorkerPayload = tuple[dict[str, Any], dict[str, Any], GroupPlan]

#: A shm worker's task: ``(slot, None)`` advances, ``(None, (offset,
#: length))`` delivers that row range of the batch's shared columns.
RangePlan = list[tuple[Optional[int], Optional[tuple[int, int]]]]

#: ``(group, tasks)`` pairs addressed to one worker.
WorkerPlans = list[tuple[int, Any]]


def _replay_group(group: Sampler, tasks: GroupPlan) -> float:
    """Replay one group's plan in place; returns the measured seconds.

    Shared by every backend that executes plans against live group
    objects (thread workers, shm workers after the rebuild) — the replay
    order is exactly the serial per-group delivery order, which is what
    makes the backends bit-identical.
    """
    started = time.perf_counter()
    for slot, batch in tasks:
        if slot is not None:
            group.advance(slot)
        else:
            group.observe_batch(batch)
    return time.perf_counter() - started


def _ingest_group(payload: WorkerPayload) -> tuple[dict[str, Any], float]:
    """Process-pool worker entry point: rebuild one group, replay its plan.

    ``payload`` is ``(config_dict, state, tasks)`` where ``tasks`` is the
    group's ``(slot, None) | (None, batch)`` plan.  Returns the group's
    new ``state_dict`` and the measured ingest seconds (timer starts
    after the rebuild, so the measurement is the group's actual compute,
    not the serialization overhead).
    """
    # Lazy import: repro.core.api lazily imports this runtime package's
    # sharded module, so the dependency must not exist at import time.
    from ..core.api import make_sampler

    config_dict, state, tasks = payload
    group = make_sampler(SamplerConfig(**config_dict))
    group.load_state(state)
    elapsed = _replay_group(group, tasks)
    return group.state_dict(), elapsed


def _ingest_group_pickled(blob: bytes) -> bytes:
    """The instrumented pool entry point: explicit pickle framing.

    The parent pickles the payload itself (so it can count the bytes)
    and the worker pickles the reply for the same reason; the pool then
    ships opaque ``bytes`` either way.  Cost-wise this only re-wraps a
    bytes object — the payload is serialized exactly once per direction.
    """
    state, elapsed = _ingest_group(pickle.loads(blob))
    return pickle.dumps((state, elapsed), protocol=pickle.HIGHEST_PROTOCOL)


def _noop(_: int) -> None:
    """Pool warm-up task (forces the worker processes to exist)."""


# ---------------------------------------------------------------------------
# Shared-memory plumbing
# ---------------------------------------------------------------------------


def _shm_attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing block without taking cleanup ownership.

    The parent owns every block's lifecycle (create → unlink inside one
    batch call); an attaching worker must not let *its* resource tracker
    claim the segment, or the tracker unlinks it a second time at worker
    exit and spews "leaked shared_memory" warnings for segments that
    were cleaned up correctly.
    """
    if sys.version_info >= (3, 13):
        return shared_memory.SharedMemory(name=name, track=False)
    # Pre-3.13 has no track=False and unconditionally registers every
    # attach with the worker's resource tracker, which then "cleans up"
    # (double-unlinks) the parent-owned segment at worker exit — the
    # long-standing cpython#82300 behavior.  Suppressing the register
    # for the duration of the attach is the standard workaround; the
    # worker loop is single-threaded, so the swap cannot race.
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None  # type: ignore[assignment]
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original  # type: ignore[assignment]


def _create_block(column: npt.NDArray[Any]) -> shared_memory.SharedMemory:
    """Create one shm block holding ``column`` (written exactly once)."""
    block = shared_memory.SharedMemory(create=True, size=max(1, column.nbytes))
    try:
        view: npt.NDArray[Any] = np.ndarray(
            column.shape, dtype=column.dtype, buffer=block.buf
        )
        view[:] = column
        del view
    except BaseException:
        try:
            block.unlink()
        except OSError:  # pragma: no cover - already gone
            pass
        try:
            block.close()
        except BufferError:  # pragma: no cover - view still exported
            pass
        raise
    return block


def _release_blocks(blocks: list[shared_memory.SharedMemory]) -> None:
    """Unlink + close every block (idempotent, exception-proof)."""
    for block in blocks:
        try:
            block.unlink()
        except OSError:
            pass
        try:
            block.close()
        except BufferError:  # pragma: no cover - view still exported
            pass


def _shm_replay_ranges(
    groups: dict[tuple[int, int], Sampler],
    session: int,
    columns: Optional[tuple[npt.NDArray[Any], ...]],
    hasher: UnitHasher,
    plans: WorkerPlans,
) -> dict[int, float]:
    """Replay range plans against zero-copy column views (worker side).

    Every delivery builds an :class:`EventBatch` whose columns are
    *slices of the mapped shm blocks* and adopts the parent-warmed
    sampling-hash slice; the cores convert to Python lists before
    retaining anything, so no view outlives this frame and the caller
    can close the mappings immediately after.
    """
    timings: dict[int, float] = {}
    for g, tasks in plans:
        group = groups[(session, g)]
        started = time.perf_counter()
        for slot, span in tasks:
            if slot is not None:
                group.advance(slot)
            elif columns is not None and span is not None:
                offset, length = span
                run = EventBatch(
                    columns[0][offset : offset + length],
                    columns[1][offset : offset + length],
                )
                run.adopt_hash_column(
                    hasher, columns[2][offset : offset + length]
                )
                group.observe_columns(run)
        timings[g] = time.perf_counter() - started
    return timings


def _shm_ingest_columns(
    groups: dict[tuple[int, int], Sampler], args: tuple[Any, ...]
) -> dict[int, float]:
    """One ``ingest_columns`` request: attach, replay, detach."""
    session, meta, hasher_key, plans = args
    handles: list[shared_memory.SharedMemory] = []
    columns: Optional[tuple[npt.NDArray[Any], ...]] = None
    try:
        if meta is not None:
            items_name, sites_name, hash_name, rows = meta
            handles = [
                _shm_attach(items_name),
                _shm_attach(sites_name),
                _shm_attach(hash_name),
            ]
            columns = (
                np.ndarray((rows,), dtype=np.int64, buffer=handles[0].buf),
                np.ndarray((rows,), dtype=np.int64, buffer=handles[1].buf),
                np.ndarray((rows,), dtype=np.float64, buffer=handles[2].buf),
            )
        hasher = UnitHasher(seed=hasher_key[0], algorithm=hasher_key[1])
        return _shm_replay_ranges(groups, session, columns, hasher, plans)
    finally:
        columns = None  # drop the buffer views before closing the maps
        for handle in handles:
            try:
                handle.close()
            except BufferError:  # pragma: no cover - a core retained a view
                pass


def _shm_dispatch(
    groups: dict[tuple[int, int], Sampler], command: str, args: Any
) -> Any:
    """Execute one worker command against the persistent group store."""
    from ..core.api import make_sampler  # lazy: avoids an import cycle

    if command == "adopt":
        for session, g, config_dict, state in args:
            group = make_sampler(SamplerConfig(**config_dict))
            group.load_state(state)
            groups[(session, g)] = group
        return None
    if command == "ingest_columns":
        return _shm_ingest_columns(groups, args)
    if command == "ingest_events":
        session, plans = args
        return {
            g: _replay_group(groups[(session, g)], tasks) for g, tasks in plans
        }
    if command == "collect":
        session, group_ids = args
        return {g: groups[(session, g)].state_dict() for g in group_ids}
    if command == "drop":
        for key in [k for k in groups if k[0] in args]:
            del groups[key]
        return None
    raise ProtocolError(f"unknown shm worker command {command!r}")


def _shm_worker_main(conn: Connection) -> None:
    """A persistent worker's request/reply loop.

    Holds its share of every session's rebuilt groups across batches;
    exits on the ``close`` command or when the parent's pipe end closes
    (parent death — the workers are daemonic either way).  Errors are
    reported as ``("error", message)`` replies, never silent death.
    """
    groups: dict[tuple[int, int], Sampler] = {}
    while True:
        try:
            command, args = pickle.loads(conn.recv_bytes())
        except (EOFError, OSError):
            break
        if command == "close":
            try:
                conn.send_bytes(pickle.dumps(("ok", None)))
            except (BrokenPipeError, OSError):  # pragma: no cover
                pass
            break
        try:
            reply: tuple[str, Any] = (
                "ok",
                _shm_dispatch(groups, command, args),
            )
        except BaseException as exc:  # reported to the parent, never silent
            reply = ("error", f"{type(exc).__name__}: {exc}")
        try:
            conn.send_bytes(
                pickle.dumps(reply, protocol=pickle.HIGHEST_PROTOCOL)
            )
        except (BrokenPipeError, OSError):  # pragma: no cover
            break
    conn.close()


class _ShmWorker:
    """One persistent worker process plus its parent-side pipe end."""

    __slots__ = ("process", "conn")

    def __init__(self, process: Any, conn: Connection) -> None:
        self.process = process
        self.conn = conn


class _ShmSession:
    """Where one sampler's canonical group state currently lives."""

    __slots__ = (
        "session_id",
        "workers_canonical",
        "dirty",
        "pending",
        "batches_since_checkpoint",
    )

    def __init__(self, session_id: int) -> None:
        self.session_id = session_id
        #: True once the workers hold adopted (authoritative) groups.
        self.workers_canonical = False
        #: Group ids whose worker-held copies have advanced past the
        #: parent's since the last sync.  Empty means fully in sync;
        #: ``sync()`` collects exactly these groups and nothing else.
        self.dirty: set[int] = set()
        #: Per-group replay log: every batch plan shipped since the
        #: group's parent copy was last synchronized, retained until a
        #: sync/adopt boundary acknowledges the worker state back into
        #: the parent.  On a worker crash, replaying ``pending[g]`` (in
        #: ship order) against the parent's copy reproduces the
        #: worker-held group bit for bit — zero acked-data loss.
        self.pending: dict[int, GroupPlan] = {}
        #: Batches since the replay log was last trimmed by a sync;
        #: bounds log memory on sync-free workloads (``checkpoint_batches``).
        self.batches_since_checkpoint = 0


def _terminate_workers(workers: list[_ShmWorker]) -> None:
    """Tear worker processes down unconditionally (finalizer-safe)."""
    for worker in workers:
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover
            pass
    for worker in workers:
        if worker.process.is_alive():
            worker.process.terminate()
    for worker in workers:
        worker.process.join(timeout=1.0)


# ---------------------------------------------------------------------------
# Backends
# ---------------------------------------------------------------------------


class ExecutionBackend(ABC):
    """How a :class:`~repro.runtime.sharded.ShardedSampler` ingests.

    One backend instance may be shared between samplers; tests reuse a
    single worker pool across many short-lived samplers this way (the
    shm backend keys its per-sampler sessions weakly, so sharing is safe
    there too).

    Serialization accounting: ``pickle_bytes`` counts bytes of pickled
    *per-batch event payloads* (tuple sub-batches, column slices, and the
    per-batch state round-trip of the process backend) and ``ipc_bytes``
    counts every byte that crosses a process boundary for any reason
    (payloads, plan metadata, session state exchanges).  The zero-copy
    claim of the shm backend is therefore falsifiable:
    ``pickle_bytes == 0`` for columnar ingest, enforced by the perf
    regression gate.
    """

    #: Registry-style name (``config.executor``).
    name: str

    #: Cumulative pickled event-payload bytes (see class docstring).
    pickle_bytes: int = 0
    #: Cumulative bytes crossing a process boundary, any encoding.
    ipc_bytes: int = 0
    #: Crash-replay recoveries performed (see the module docstring's
    #: failure-semantics section).  Zero for the in-process backends.
    recoveries: int = 0

    @abstractmethod
    def ingest_events(self, sharded: "ShardedSampler", events: list[Any]) -> int:
        """Deliver a tuple-event batch to the groups; returns the count."""

    @abstractmethod
    def ingest_columns(self, sharded: "ShardedSampler", batch: EventBatch) -> int:
        """Deliver a columnar :class:`~repro.core.events.EventBatch`."""

    def sync(self, sharded: "ShardedSampler") -> None:
        """Pull worker-held group state back into ``sharded.groups``.

        No-op for backends whose parent-side groups are always
        canonical (serial/thread/process).  The sharded facade calls
        this at most once per quiescent period — queries between two
        mutations share a single sync — and a stateful backend should
        itself collect only the groups dirtied since the last sync.
        """

    def invalidate(self, sharded: "ShardedSampler") -> None:
        """Declare the parent's groups canonical again (after syncing).

        The sharded facade calls this before mutating groups in-process
        (single ``observe``, ``advance``, ``load_state``); stateful
        backends must re-adopt on the next batch.
        """

    def release(self, sharded: "ShardedSampler") -> None:
        """Forget a sampler's session entirely (no state transfer).

        Called when ``sharded``'s group objects are about to be replaced
        wholesale (e.g. :meth:`~repro.runtime.sharded.ShardedSampler.reshard`)
        and any worker-held copies are garbage.  Callers that need the
        worker state back must :meth:`sync`/:meth:`invalidate` *first*.
        No-op for stateless backends.
        """

    def close(self) -> None:
        """Release backend resources (idempotent; no-op by default)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()


class SerialExecutor(ExecutionBackend):
    """In-process sequential ingest — the default backend.

    Delegates straight back to the facade's run-major delivery loops
    (vectorized shard split, shared warmed hash column), exactly the
    pre-backend behavior.  Per-group timers accumulate around each
    group's in-process delivery, so ``critical_path_seconds`` *simulates*
    the slowest group of a parallel deployment.
    """

    name = "serial"

    def ingest_events(self, sharded: "ShardedSampler", events: list[Any]) -> int:
        from ..core.protocol import iter_event_runs

        for slot, run in iter_event_runs(events):
            if slot is not None:
                sharded.advance(slot)
            sharded._deliver_batch(run)
        return len(events)

    def ingest_columns(self, sharded: "ShardedSampler", batch: EventBatch) -> int:
        for slot, run in batch.slot_runs():
            if slot is not None:
                sharded.advance(slot)
            sharded._deliver_columns(run)
        return len(batch)


class ThreadExecutor(ExecutionBackend):
    """Thread-pool ingest over the parent's own group objects.

    Args:
        workers: Thread count W; ``0`` picks ``min(8, cpu_count)``.

    Plans are built exactly like the process backend's (slot validation
    up front), but the threads replay them against the parent's groups
    *in place* — same heap, zero serialization, zero copies, and nothing
    to sync back.  The NumPy kernels (hash sweeps, routing, threshold
    pre-filters) drop the GIL and genuinely overlap; the Python-level
    delivery bookkeeping does not, so expect a modest win on columnar
    workloads and none on tuple ones.  Per-group disjointness makes this
    race-free: a group is touched by exactly one thread per batch.

    Raises:
        ConfigurationError: For a negative ``workers``.
    """

    name = "thread"

    def __init__(self, workers: int = 0) -> None:
        workers = int(workers)
        if workers < 0:
            raise ConfigurationError(f"workers must be >= 0, got {workers}")
        self.workers = workers or min(8, os.cpu_count() or 1)
        self._pool: Optional[concurrent.futures.ThreadPoolExecutor] = None

    def _ensure_pool(self) -> concurrent.futures.ThreadPoolExecutor:
        if self._pool is None:
            self._pool = concurrent.futures.ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-shard"
            )
        return self._pool

    def warmup(self) -> None:
        """Create the pool outside any timed window (threads are cheap,
        but benchmark hygiene is uniform across backends)."""
        self._ensure_pool()

    def close(self) -> None:
        """Shut the pool down (idempotent); the next ingest re-creates it."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __getstate__(self) -> dict[str, int]:
        return {"workers": self.workers}

    def __setstate__(self, state: dict[str, int]) -> None:
        self.workers = state["workers"]
        self._pool = None

    def ingest_events(self, sharded: "ShardedSampler", events: list[Any]) -> int:
        plans, last_slot, advances = sharded._plan_events(events)
        self._run(sharded, plans, last_slot, advances)
        return len(events)

    def ingest_columns(self, sharded: "ShardedSampler", batch: EventBatch) -> int:
        plans, last_slot, advances = sharded._plan_columns(
            batch, warm_hasher=sharded.sampling_hasher
        )
        self._run(sharded, plans, last_slot, advances)
        return len(batch)

    def _run(
        self,
        sharded: "ShardedSampler",
        plans: list[GroupPlan],
        last_slot: Optional[int],
        advances: int,
    ) -> None:
        jobs = [(g, tasks) for g, tasks in enumerate(plans) if tasks]
        if jobs:
            pool = self._ensure_pool()
            futures = [
                (g, pool.submit(_replay_group, sharded.groups[g], tasks))
                for g, tasks in jobs
            ]
            for g, future in futures:
                sharded.group_ingest_seconds[g] += future.result()
        sharded._commit_slots(last_slot, advances)


class ProcessExecutor(ExecutionBackend):
    """Multi-core ingest over a lazily created process pool.

    Args:
        workers: Pool size ``W``; ``0`` picks ``min(8, cpu_count)``.

    Each batch call builds the per-group plans up front (one vectorized
    routing pass, slot monotonicity validated before anything ships),
    fans the non-empty plans out to the pool, and merges the returned
    group states.  Per-call cost is one pickled state + payload
    round-trip per group — the "pickle tax" the instrumented
    ``pickle_bytes`` counter makes visible and the shm backend removes —
    so the backend pays off for large batches and is pure overhead for
    event-at-a-time ingest (single ``observe`` calls stay in-process).

    The backend is stateless across batches, which makes crash recovery
    cheap: a reply *is* the acknowledgement, and a group whose reply
    never arrives (worker killed mid-batch) is simply replayed against
    the parent's own copy — untouched since before the batch — giving a
    result bit-identical to a never-crashed run.  ``recoveries`` counts
    the replayed groups.

    Raises:
        ConfigurationError: For a negative ``workers``.
    """

    name = "process"

    def __init__(self, workers: int = 0) -> None:
        workers = int(workers)
        if workers < 0:
            raise ConfigurationError(f"workers must be >= 0, got {workers}")
        self.workers = workers or min(8, os.cpu_count() or 1)
        # A concurrent.futures pool rather than multiprocessing.Pool:
        # only the former surfaces an abruptly killed worker as a
        # BrokenProcessPool on the affected futures (Pool.map simply
        # hangs — the long-standing bpo-22393 behavior), and crash
        # recovery needs that signal.
        self._pool: Optional[concurrent.futures.ProcessPoolExecutor] = None
        self.pickle_bytes = 0
        self.ipc_bytes = 0
        self.recoveries = 0

    # -- pool lifecycle ------------------------------------------------------

    def _ensure_pool(self) -> concurrent.futures.ProcessPoolExecutor:
        if self._pool is None:
            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.workers
            )
        return self._pool

    def warmup(self) -> None:
        """Force the worker processes into existence (benchmark hygiene:
        keeps pool start-up out of timed ingest windows)."""
        list(self._ensure_pool().map(_noop, range(self.workers)))

    def close(self) -> None:
        """Shut the pool down (idempotent); the next ingest re-creates it."""
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    # -- pickling ------------------------------------------------------------

    def __getstate__(self) -> dict[str, int]:
        # The pool is an OS resource owned by this process; a pickled
        # executor (snapshot tooling, deepcopy of a ShardedSampler
        # facade) carries only its configuration and re-creates a pool
        # lazily on first ingest.
        return {"workers": self.workers}

    def __setstate__(self, state: dict[str, int]) -> None:
        self.workers = state["workers"]
        self._pool = None
        self.pickle_bytes = 0
        self.ipc_bytes = 0
        self.recoveries = 0

    # -- ingest --------------------------------------------------------------

    def ingest_events(self, sharded: "ShardedSampler", events: list[Any]) -> int:
        plans, last_slot, advances = sharded._plan_events(events)
        self._run(sharded, plans, last_slot, advances)
        return len(events)

    def ingest_columns(self, sharded: "ShardedSampler", batch: EventBatch) -> int:
        plans, last_slot, advances = sharded._plan_columns(batch)
        self._run(sharded, plans, last_slot, advances)
        return len(batch)

    def _run(
        self,
        sharded: "ShardedSampler",
        plans: list[GroupPlan],
        last_slot: Optional[int],
        advances: int,
    ) -> None:
        payloads = [
            (g, (group.config.to_dict(), group.state_dict(), tasks))
            for g, (group, tasks) in enumerate(zip(sharded.groups, plans))
            if tasks
        ]
        if payloads:
            blobs = [
                pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
                for _, payload in payloads
            ]
            shipped = sum(len(blob) for blob in blobs)
            self.pickle_bytes += shipped
            self.ipc_bytes += shipped
            pool = self._ensure_pool()
            futures: list[tuple[int, "concurrent.futures.Future[bytes]"]] = []
            lost: list[int] = []
            try:
                for (g, _), blob in zip(payloads, blobs):
                    futures.append(
                        (g, pool.submit(_ingest_group_pickled, blob))
                    )
            except BrokenProcessPool:
                # Workers died before this batch even started; every
                # unsubmitted group replays in-process below.
                submitted = {g for g, _ in futures}
                lost.extend(g for g, _ in payloads if g not in submitted)
            replies: dict[int, bytes] = {}
            failure: Optional[BaseException] = None
            for g, future in futures:
                try:
                    replies[g] = future.result()
                except BrokenProcessPool:
                    lost.append(g)
                except Exception as exc:
                    if failure is None:
                        failure = exc
            if failure is not None:
                # A deterministic in-worker error (poisoned plan): keep
                # the all-or-nothing contract — adopt nothing, commit
                # nothing, surface the real error.
                raise failure
            for g, reply in replies.items():
                self.pickle_bytes += len(reply)
                self.ipc_bytes += len(reply)
                state, elapsed = pickle.loads(reply)
                sharded.groups[g].load_state(state)
                sharded.group_ingest_seconds[g] += elapsed
            if lost:
                # Crash-replay: a reply doubles as the worker's ack, so
                # a lost group's parent copy is exactly its pre-batch
                # state — replaying the retained plan there reproduces
                # the never-crashed result bit for bit (same delivery
                # order, same sampling hash, same message counters).
                self.close()
                self.recoveries += len(lost)
                for g in sorted(lost):
                    sharded.group_ingest_seconds[g] += _replay_group(
                        sharded.groups[g], plans[g]
                    )
        sharded._commit_slots(last_slot, advances)


class SharedMemoryExecutor(ExecutionBackend):
    """Persistent workers over zero-copy shared-memory columns.

    Args:
        workers: Worker-process count ``W``; ``0`` picks
            ``min(8, cpu_count)``.  Group ``g`` lives in worker
            ``g % W`` for every adopted sampler.

    See the module docstring for the full protocol.  The steady-state
    per-batch traffic is plan metadata only — column bytes are written
    once into ``/dev/shm`` and mapped by the workers, and group state
    crosses the pipe only at session boundaries (adopt/collect), never
    per batch.  ``pickle_bytes`` therefore stays 0 for columnar ingest
    (the tuple-event fallback honestly counts its pickled sub-batches).

    Raises:
        ConfigurationError: For a negative ``workers``.
    """

    name = "shm"

    #: Force a partial sync after this many batches per session, so the
    #: crash-replay log cannot grow without bound on sync-free workloads.
    checkpoint_batches: int = 64

    def __init__(self, workers: int = 0) -> None:
        workers = int(workers)
        if workers < 0:
            raise ConfigurationError(f"workers must be >= 0, got {workers}")
        self.workers = workers or min(8, os.cpu_count() or 1)
        self.pickle_bytes = 0
        self.ipc_bytes = 0
        self.recoveries = 0
        self._workers: Optional[list[_ShmWorker]] = None
        self._finalizer: Optional[weakref.finalize] = None
        self._sessions: "weakref.WeakKeyDictionary[Any, _ShmSession]" = (
            weakref.WeakKeyDictionary()
        )
        self._session_counter = 0
        self._dead_sessions: list[int] = []

    # -- worker lifecycle ----------------------------------------------------

    def _ensure_workers(self) -> list[_ShmWorker]:
        if self._workers is None:
            context = multiprocessing.get_context()
            spawned: list[_ShmWorker] = []
            for _ in range(self.workers):
                parent_conn, child_conn = context.Pipe(duplex=True)
                process = context.Process(
                    target=_shm_worker_main, args=(child_conn,), daemon=True
                )
                process.start()
                child_conn.close()
                spawned.append(_ShmWorker(process, parent_conn))
            self._workers = spawned
            # Interpreter-exit / GC safety net: daemonic workers die with
            # the parent anyway, but the finalizer also covers an
            # executor that is dropped without close() mid-session.
            self._finalizer = weakref.finalize(
                self, _terminate_workers, spawned
            )
        return self._workers

    def warmup(self) -> None:
        """Spawn the persistent workers outside any timed window."""
        self._ensure_workers()

    def _drop_finalizer(self) -> None:
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None

    def _on_worker_failure(self) -> None:
        """Crash-replay recovery after a worker death or in-worker error.

        Tears the remaining workers down, then rebuilds every session's
        worker-held groups *in the parent* by replaying the retained
        batch plans (``session.pending``) against the parent's
        last-synchronized copies — the exact serial delivery order the
        worker would have run, so the recovered groups (message counters
        included) are bit-identical to a never-crashed run.  The next
        batch respawns workers and re-adopts.

        A deterministic in-worker error reproduces during the replay and
        propagates to the caller as the real exception; the failing
        session keeps whatever replayed before the error (its pending
        log is cleared either way — the poisoned plan must not loop).
        """
        workers, self._workers = self._workers, None
        self._drop_finalizer()
        self._dead_sessions.clear()
        if workers:
            _terminate_workers(workers)
        replay_error: Optional[BaseException] = None
        for sampler, session in list(self._sessions.items()):
            try:
                if session.workers_canonical:
                    for g in sorted(session.pending):
                        elapsed = _replay_group(
                            sampler.groups[g], session.pending[g]
                        )
                        sampler.group_ingest_seconds[g] += elapsed
            except BaseException as exc:
                if replay_error is None:
                    replay_error = exc
            finally:
                session.pending.clear()
                session.dirty.clear()
                session.batches_since_checkpoint = 0
                session.workers_canonical = False
        if replay_error is not None:
            raise replay_error

    def close(self) -> None:
        """Collect every live session's state, then stop the workers.

        Idempotent; the executor remains usable — the next batch
        respawns the workers and re-adopts from the (now synchronized)
        parent-side groups.
        """
        if self._workers is None:
            return
        try:
            for sampler, session in list(self._sessions.items()):
                if session.workers_canonical:
                    self.sync(sampler)
                    session.workers_canonical = False
        finally:
            workers, self._workers = self._workers, None
            self._drop_finalizer()
            self._dead_sessions.clear()
            if workers:
                for worker in workers:
                    try:
                        worker.conn.send_bytes(pickle.dumps(("close", None)))
                        if worker.conn.poll(1.0):
                            worker.conn.recv_bytes()
                    except (BrokenPipeError, EOFError, OSError):
                        pass
                _terminate_workers(workers)

    # -- pickling ------------------------------------------------------------

    def __getstate__(self) -> dict[str, int]:
        # Workers, pipes, and sessions are OS/process-local resources; a
        # pickled executor carries only its configuration.  Callers must
        # query (sync) before snapshotting a sampler — the facade's
        # state_dict() does so automatically.
        return {"workers": self.workers}

    def __setstate__(self, state: dict[str, int]) -> None:
        self.workers = state["workers"]
        self.pickle_bytes = 0
        self.ipc_bytes = 0
        self.recoveries = 0
        self._workers = None
        self._finalizer = None
        self._sessions = weakref.WeakKeyDictionary()
        self._session_counter = 0
        self._dead_sessions = []

    # -- request/reply framing ----------------------------------------------

    def _post(self, worker: _ShmWorker, command: str, args: Any) -> int:
        """Send one request; returns the frame size in bytes."""
        blob = pickle.dumps((command, args), protocol=pickle.HIGHEST_PROTOCOL)
        try:
            worker.conn.send_bytes(blob)
        except (BrokenPipeError, OSError) as exc:
            self._on_worker_failure()
            raise ExecutorError(
                f"shared-memory worker died (send failed: {exc}); the "
                "retained batch plans were replayed into the parent's "
                "groups — no acknowledged data was lost"
            ) from exc
        self.ipc_bytes += len(blob)
        return len(blob)

    def _reply(self, worker: _ShmWorker) -> Any:
        """Await one reply; raises :class:`ExecutorError` on failure."""
        try:
            blob = worker.conn.recv_bytes()
        except (EOFError, OSError) as exc:
            self._on_worker_failure()
            raise ExecutorError(
                "shared-memory worker died mid-batch; the retained batch "
                "plans were replayed into the parent's groups — no "
                "acknowledged data was lost (the next batch respawns "
                "workers and re-adopts)"
            ) from exc
        self.ipc_bytes += len(blob)
        status, value = pickle.loads(blob)
        if status == "error":
            # The worker survived, but its session groups may be
            # partially replayed — rebuild from the parent's canonical
            # copy plus the retained plans (a deterministic plan error
            # reproduces during that replay and propagates instead).
            self._on_worker_failure()
            raise ExecutorError(f"shared-memory worker failed: {value}")
        return value

    # -- sessions ------------------------------------------------------------

    def _session_for(self, sharded: "ShardedSampler") -> _ShmSession:
        session = self._sessions.get(sharded)
        if session is None:
            self._session_counter += 1
            session = _ShmSession(self._session_counter)
            self._sessions[sharded] = session
            # When the sampler is garbage collected its worker-held
            # groups become unreachable garbage too; queue a drop that
            # the next command flushes.
            weakref.finalize(
                sharded, self._dead_sessions.append, session.session_id
            )
        return session

    def _flush_dead_sessions(self, workers: list[_ShmWorker]) -> None:
        if not self._dead_sessions:
            return
        dead, self._dead_sessions = tuple(self._dead_sessions), []
        for worker in workers:
            self._post(worker, "drop", dead)
        for worker in workers:
            self._reply(worker)

    def _adopt_if_needed(
        self,
        sharded: "ShardedSampler",
        session: _ShmSession,
        workers: list[_ShmWorker],
    ) -> None:
        """Ship group state to the workers once per session epoch."""
        if session.workers_canonical:
            return
        per_worker: list[list[tuple[int, int, dict[str, Any], dict[str, Any]]]]
        per_worker = [[] for _ in workers]
        for g, group in enumerate(sharded.groups):
            per_worker[g % len(workers)].append(
                (
                    session.session_id,
                    g,
                    group.config.to_dict(),
                    group.state_dict(),
                )
            )
        posted = []
        for w, payload in enumerate(per_worker):
            if payload:
                self._post(workers[w], "adopt", payload)
                posted.append(w)
        for w in posted:
            self._reply(workers[w])
        session.workers_canonical = True
        session.dirty.clear()
        # Fresh epoch: the copies just shipped ARE the parent copies, so
        # there is nothing to replay until the next batch.
        session.pending.clear()
        session.batches_since_checkpoint = 0

    def sync(self, sharded: "ShardedSampler") -> None:
        """Collect the *dirty* worker-held group states back into the
        parent copies.

        Partial by design: only the groups that ingested since the last
        sync (``session.dirty``) cross the pipe — a clean group's parent
        copy is already canonical, so collecting it would be pure IPC
        waste on read-heavy workloads.
        """
        session = self._sessions.get(sharded)
        if session is None or not session.workers_canonical or not session.dirty:
            return
        workers = self._workers
        if workers is None:
            # Workers were closed/crashed since the last ingest; crash
            # recovery (or close) already settled the parent copies.
            session.workers_canonical = False
            session.dirty.clear()
            session.pending.clear()
            return
        per_worker: dict[int, list[int]] = {}
        for g in sorted(session.dirty):
            per_worker.setdefault(g % len(workers), []).append(g)
        try:
            posted = []
            for w, group_ids in sorted(per_worker.items()):
                self._post(
                    workers[w], "collect", (session.session_id, group_ids)
                )
                posted.append(w)
            for w in posted:
                for g, state in self._reply(workers[w]).items():
                    sharded.groups[g].load_state(state)
                    # The collected state supersedes the replay log —
                    # the parent copy is canonical again for this group.
                    session.pending.pop(g, None)
        except ExecutorError:
            # A worker died mid-collect.  _on_worker_failure already
            # replayed every still-pending plan into the parent copies,
            # which is exactly the state this sync was after — recovered.
            self.recoveries += 1
            return
        session.dirty.clear()
        session.batches_since_checkpoint = 0

    def invalidate(self, sharded: "ShardedSampler") -> None:
        """Sync, then make the parent's groups canonical again."""
        session = self._sessions.get(sharded)
        if session is None:
            return
        self.sync(sharded)
        session.workers_canonical = False
        # The parent is canonical from here; worker-held copies (and any
        # log entries for them) are garbage until the next adopt.
        session.pending.clear()
        session.batches_since_checkpoint = 0

    def release(self, sharded: "ShardedSampler") -> None:
        """Drop a sampler's session without any state transfer.

        The facade calls this when it is about to replace its group
        objects wholesale (resharding): the worker-held copies describe
        groups that no longer exist, so they are queued for a ``drop``
        that the next command flushes.
        """
        session = self._sessions.pop(sharded, None)
        if session is None:
            return
        session.workers_canonical = False
        session.pending.clear()
        session.dirty.clear()
        if self._workers is not None:
            self._dead_sessions.append(session.session_id)

    # -- ingest --------------------------------------------------------------

    def ingest_events(self, sharded: "ShardedSampler", events: list[Any]) -> int:
        plans, last_slot, advances = sharded._plan_events(events)
        self._execute_batch(sharded, plans, hasher=None)
        sharded._commit_slots(last_slot, advances)
        return len(events)

    def ingest_columns(self, sharded: "ShardedSampler", batch: EventBatch) -> int:
        hasher = sharded.sampling_hasher
        plans, last_slot, advances = sharded._plan_columns(
            batch, warm_hasher=hasher
        )
        self._execute_batch(sharded, plans, hasher=hasher)
        sharded._commit_slots(last_slot, advances)
        return len(batch)

    def _execute_batch(
        self,
        sharded: "ShardedSampler",
        plans: list[GroupPlan],
        hasher: Optional[UnitHasher],
    ) -> None:
        """Ship one batch to the workers, surviving worker crashes.

        The batch's materialized plans join the session's replay log
        *before* anything is posted, so a crash at any later point is
        recoverable: ``_on_worker_failure`` replays the log (this batch
        included) into the parent's groups and the resulting
        :class:`ExecutorError` is swallowed here — the ingest call
        succeeds with zero acked-data loss.  A crash *before* the plans
        are logged (re-adopt or dead-session flush) leaves the parent at
        its pre-batch state, so this batch is simply replayed in-process
        directly.  Either way ``recoveries`` ticks once.
        """
        logged = False
        try:
            workers = self._ensure_workers()
            self._flush_dead_sessions(workers)
            session = self._session_for(sharded)
            self._adopt_if_needed(sharded, session, workers)
            for g, tasks in enumerate(plans):
                if tasks:
                    session.pending.setdefault(g, []).extend(tasks)
            logged = True
            if hasher is None:
                per_worker = self._plans_by_worker(plans, len(workers))
                posted = []
                for w, worker_plans in per_worker:
                    # The tuple fallback really does pickle event
                    # payloads across the pipe — count it honestly.
                    self.pickle_bytes += self._post(
                        workers[w],
                        "ingest_events",
                        (session.session_id, worker_plans),
                    )
                    posted.append(w)
                self._collect_timings(sharded, session, workers, posted)
            else:
                blocks, meta, range_plans = self._build_blocks(plans, hasher)
                try:
                    per_worker = self._plans_by_worker_ranged(
                        range_plans, len(workers)
                    )
                    posted = []
                    for w, worker_plans in per_worker:
                        self._post(
                            workers[w],
                            "ingest_columns",
                            (
                                session.session_id,
                                meta,
                                (hasher.seed, hasher.algorithm),
                                worker_plans,
                            ),
                        )
                        posted.append(w)
                    self._collect_timings(sharded, session, workers, posted)
                finally:
                    # The blocks never outlive the batch call: every
                    # worker has replied (or the executor is already
                    # torn down), so the segments can be unlinked
                    # unconditionally.
                    _release_blocks(blocks)
            session.batches_since_checkpoint += 1
            if session.batches_since_checkpoint >= self.checkpoint_batches:
                self.sync(sharded)
        except ExecutorError:
            self.recoveries += 1
            if not logged:
                # The crash predates this batch's log entry; the
                # recovery replay restored the pre-batch state, so
                # apply the batch in-process now.
                for g, tasks in enumerate(plans):
                    if tasks:
                        sharded.group_ingest_seconds[g] += _replay_group(
                            sharded.groups[g], tasks
                        )

    def _collect_timings(
        self,
        sharded: "ShardedSampler",
        session: _ShmSession,
        workers: list[_ShmWorker],
        posted: list[int],
    ) -> None:
        for w in posted:
            for g, elapsed in self._reply(workers[w]).items():
                sharded.group_ingest_seconds[g] += elapsed
                session.dirty.add(g)

    @staticmethod
    def _plans_by_worker(
        plans: list[GroupPlan], worker_count: int
    ) -> list[tuple[int, WorkerPlans]]:
        per_worker: dict[int, WorkerPlans] = {}
        for g, tasks in enumerate(plans):
            if tasks:
                per_worker.setdefault(g % worker_count, []).append((g, tasks))
        return sorted(per_worker.items())

    @staticmethod
    def _plans_by_worker_ranged(
        range_plans: list[tuple[int, RangePlan]], worker_count: int
    ) -> list[tuple[int, WorkerPlans]]:
        per_worker: dict[int, WorkerPlans] = {}
        for g, tasks in range_plans:
            per_worker.setdefault(g % worker_count, []).append((g, tasks))
        return sorted(per_worker.items())

    @staticmethod
    def _build_blocks(
        plans: list[GroupPlan], hasher: UnitHasher
    ) -> tuple[
        list[shared_memory.SharedMemory],
        Optional[tuple[str, str, str, int]],
        list[tuple[int, RangePlan]],
    ]:
        """Lay the batch's columns out once and index them by ranges.

        Concatenates every group's sub-run columns (items, sites, and
        the parent-warmed sampling-hash slice — a cache hit, computed
        once for the whole batch) into three contiguous shm blocks and
        rewrites the plans as ``(offset, length)`` ranges into them.
        Returns ``(blocks, meta, range_plans)``; ``meta`` is ``None``
        for an advance-only batch (no blocks created).
        """
        chunks_items: list[npt.NDArray[Any]] = []
        chunks_sites: list[npt.NDArray[Any]] = []
        chunks_hash: list[npt.NDArray[Any]] = []
        range_plans: list[tuple[int, RangePlan]] = []
        offset = 0
        for g, tasks in enumerate(plans):
            if not tasks:
                continue
            ranged: RangePlan = []
            for slot, run in tasks:
                if slot is not None:
                    ranged.append((slot, None))
                    continue
                rows = len(run)
                chunks_items.append(run.items)
                chunks_sites.append(run.require_sites())
                chunks_hash.append(run.hash_column(hasher))
                ranged.append((None, (offset, rows)))
                offset += rows
            range_plans.append((g, ranged))
        if offset == 0:
            return [], None, range_plans
        blocks: list[shared_memory.SharedMemory] = []
        try:
            for column in (
                np.concatenate(chunks_items),
                np.concatenate(chunks_sites),
                np.concatenate(chunks_hash),
            ):
                blocks.append(_create_block(column))
        except BaseException:
            _release_blocks(blocks)
            raise
        meta = (blocks[0].name, blocks[1].name, blocks[2].name, offset)
        return blocks, meta, range_plans


def make_executor(config: SamplerConfig) -> ExecutionBackend:
    """Build the backend a :class:`SamplerConfig` asks for.

    Raises:
        ConfigurationError: For an unknown ``config.executor`` name.
    """
    if config.executor == "serial":
        return SerialExecutor()
    if config.executor == "thread":
        return ThreadExecutor(config.workers)
    if config.executor == "process":
        return ProcessExecutor(config.workers)
    if config.executor == "shm":
        return SharedMemoryExecutor(config.workers)
    raise ConfigurationError(
        f"unknown executor {config.executor!r}; expected one of {EXECUTORS}"
    )
