"""The shared distributed-runtime layer.

Everything the protocol facades used to duplicate lives here, once:

* :class:`~repro.runtime.topology.Topology` — node registration, site
  addressing, and coordinator wiring over a pluggable
  :class:`~repro.netsim.network.Network` transport, plus the canonical
  message-cost accessors.
* :class:`~repro.runtime.engine.Engine` — single/batch observe routing
  with policies (explicit site, round-robin, hash-partition), reusing
  :mod:`repro.streams.partition` semantics.
* :class:`~repro.runtime.sharded.ShardedSampler` — S independent
  coordinator groups over a hash-partitioned key space with query-time
  bottom-s merge (registered as ``sharded:<variant>``).
* :mod:`~repro.runtime.executor` — pluggable execution backends for the
  sharded ingest path: :class:`~repro.runtime.executor.SerialExecutor`
  (in-process, simulated critical path),
  :class:`~repro.runtime.executor.ThreadExecutor` (thread pool over the
  GIL-dropping NumPy kernels),
  :class:`~repro.runtime.executor.ProcessExecutor` (a multiprocessing
  pool; measured critical path, per-batch pickling), and
  :class:`~repro.runtime.executor.SharedMemoryExecutor` (persistent
  workers over zero-copy ``/dev/shm`` columns) — all bit-identical.

Layering: ``streams → runtime (engine) → protocol cores → runtime
(topology) → netsim transports``.  The runtime depends only on
``core.protocol``, ``netsim``, ``streams``, and ``hashing``; the concrete
protocol facades depend on the runtime, never the other way around — new
topologies (multi-process, async) plug in behind the same interfaces.
"""

from .engine import ROUTING_POLICIES, Engine
from .executor import (
    ExecutionBackend,
    ProcessExecutor,
    SerialExecutor,
    SharedMemoryExecutor,
    ThreadExecutor,
    make_executor,
)
from .sharded import ShardedSampler
from .topology import Topology, merge_message_stats

__all__ = [
    "Engine",
    "ExecutionBackend",
    "ProcessExecutor",
    "ROUTING_POLICIES",
    "SerialExecutor",
    "SharedMemoryExecutor",
    "ShardedSampler",
    "ThreadExecutor",
    "Topology",
    "make_executor",
    "merge_message_stats",
]
