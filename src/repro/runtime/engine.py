"""Engine: policy-driven ingestion routing over any :class:`Sampler`.

The sampler protocol is *addressed* — every event names the site that
observed it.  Real ingest pipelines usually start one level up, with a raw
item stream and a routing decision still to make.  The engine owns that
decision, with the three policies the paper's experiments use
(:mod:`repro.streams.partition` semantics):

* ``"explicit"`` — events already carry site ids (``(site, item)`` or
  ``(site, item, slot)``); the engine is a pass-through.
* ``"round-robin"`` — item ``j`` of the engine's lifetime goes to site
  ``j mod k`` (the paper's round-robin dealing), so chunked batches
  compose exactly like one long stream.
* ``"hash"`` — content-addressed: item ``e`` always goes to site
  ``hash_route(e) mod-like k`` via
  :class:`~repro.streams.partition.HashDistributor`.  Same key, same
  site — the sticky-routing invariant sharded deployments need.

Routing is vectorized for batches (one NumPy pass under ``mix64``) and
the single/batch paths are equivalent by construction: the batch path
computes exactly the site ids the one-at-a-time path would.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Union

import numpy as np

from ..core.events import EventBatch
from ..core.protocol import Sampler
from ..errors import ConfigurationError
from ..streams.partition import HashDistributor, RoundRobinDistributor

__all__ = ["Engine", "ROUTING_POLICIES"]

#: Supported routing policy names.
ROUTING_POLICIES = ("explicit", "round-robin", "hash")


class Engine:
    """Routes raw items into a sampler under a named policy.

    Args:
        sampler: Any :class:`~repro.core.protocol.Sampler` (including a
            :class:`~repro.runtime.sharded.ShardedSampler`).
        policy: One of :data:`ROUTING_POLICIES`.
        seed: Routing seed for the ``"hash"`` policy (independent of the
            sampler's hash seed by construction).
        algorithm: Routing hash algorithm; defaults to the sampler's own
            (so anything the sampler can hash, the router can too).

    Raises:
        ConfigurationError: For an unknown policy.
    """

    def __init__(
        self,
        sampler: Sampler,
        policy: str = "hash",
        seed: int = 0,
        algorithm: Optional[str] = None,
    ) -> None:
        if policy not in ROUTING_POLICIES:
            raise ConfigurationError(
                f"unknown routing policy {policy!r}; expected one of "
                f"{ROUTING_POLICIES}"
            )
        self.sampler = sampler
        self.policy = policy
        self._position = 0
        self._distributor: Optional[
            Union[HashDistributor, RoundRobinDistributor]
        ] = None
        if policy == "hash":
            if algorithm is None:
                algorithm = sampler.config.algorithm
            self._distributor = HashDistributor(
                sampler.num_sites, seed=seed, algorithm=algorithm
            )
        elif policy == "round-robin":
            self._distributor = RoundRobinDistributor(sampler.num_sites)

    @property
    def num_sites(self) -> int:
        """Number of sites the engine routes across."""
        return self.sampler.num_sites

    def _hash_distributor(self) -> HashDistributor:
        """The routing distributor, narrowed (``"hash"`` policy only)."""
        distributor = self._distributor
        if not isinstance(distributor, HashDistributor):  # pragma: no cover
            raise ConfigurationError(
                f"no hash distributor under policy {self.policy!r}"
            )
        return distributor

    def site_for(self, item: Any) -> int:
        """The site the *next* observation of ``item`` would be routed to.

        For ``"round-robin"`` this depends on the engine's position (and
        does not advance it); ``"explicit"`` has no routing function.

        Raises:
            ConfigurationError: Under the ``"explicit"`` policy.
        """
        if self.policy == "hash":
            return self._hash_distributor().assign_one(item)
        if self.policy == "round-robin":
            return self._position % self.num_sites
        raise ConfigurationError(
            "the 'explicit' policy carries site ids in the events; "
            "there is no routing function to query"
        )

    def observe(self, item: Any, *, slot: Optional[int] = None) -> None:
        """Route and deliver one raw item (``explicit``: a full event).

        A ``slot`` advances time *before* delivery; under ``explicit``
        an event's own slot stamp is then still honored (so a stamp
        behind the advanced clock raises, exactly as in the batch path).
        """
        if slot is not None:
            self.sampler.advance(slot)
        if self.policy == "explicit":
            if len(item) == 2:
                self.sampler.observe(item[0], item[1])
            else:
                self.sampler.observe(item[0], item[1], slot=item[2])
            return
        site = self.site_for(item)
        self._position += 1
        self.sampler.observe(site, item)

    def observe_batch(self, items: Iterable[Any], *, slot: Optional[int] = None) -> int:
        """Route and deliver a batch of raw items; returns the count.

        Equivalent to ``sampler.advance(slot)`` (when ``slot`` is given —
        it applies once, before any delivery, even for an empty batch)
        followed by looping :meth:`observe` without ``slot`` — the batch
        path computes the same site assignments, then hands the addressed
        events to the sampler's (vectorized) ``observe_batch``.

        A columnar :class:`~repro.core.events.EventBatch` (items column;
        sites optional under ``explicit``) dispatches to
        :meth:`observe_columns`, which keeps the routing output as an
        array end to end.
        """
        if isinstance(items, EventBatch):
            return self.observe_columns(items, slot=slot)
        if slot is not None:
            self.sampler.advance(slot)
        if self.policy == "explicit":
            # Pass-through: the events already carry site ids, so no copy
            # is needed here (the sampler materializes if it must).
            return self.sampler.observe_batch(items)
        items = items if isinstance(items, list) else list(items)
        if not items:
            return 0
        if self.policy == "hash":
            sites = self._hash_distributor().assignments_for(items).tolist()
        else:
            k = self.num_sites
            start = self._position
            sites = [(start + j) % k for j in range(len(items))]
        self._position += len(items)
        return self.sampler.observe_batch(list(zip(sites, items)))

    def observe_columns(
        self, batch: EventBatch, *, slot: Optional[int] = None
    ) -> int:
        """Route a columnar batch; site assignments stay NumPy arrays.

        Semantics of :meth:`observe_batch` over ``batch.to_events()``:
        the same distributor computes the same site ids, but the column
        is attached with :meth:`~repro.core.events.EventBatch.with_sites`
        (sharing the cached hash columns) instead of being zipped back
        into tuples.
        """
        if slot is not None:
            self.sampler.advance(slot)
        n = len(batch)
        if self.policy == "explicit":
            batch.require_sites()
            return self.sampler.observe_batch(batch)
        if not n:
            return 0
        if self.policy == "hash":
            sites = self._hash_distributor().assignments_for_batch(batch)
        else:
            k = self.num_sites
            sites = (self._position + np.arange(n, dtype=np.int64)) % k
        self._position += n
        return self.sampler.observe_batch(batch.with_sites(sites))
