"""Sharded scale-out: S independent coordinator groups, one key space each.

The single-coordinator topology is the scalability ceiling of every
protocol in this package: one node absorbs every report.  The standard
production remedy is *hash-partitioned sharding*: run ``S`` independent
coordinator groups, deterministically route each key to exactly one group
(an independent routing hash — :class:`~repro.streams.partition.HashDistributor`),
and merge at query time.

Exactness is preserved because all groups share the *same sampling hash*
``h`` while owning *disjoint* key sets: group ``g`` maintains, by its own
protocol's guarantee, the bottom-``s`` of the distinct keys routed to it,
so the union of the groups' samples is a superset of the global
bottom-``s``, and the query-time merge (sort the union by hash, keep the
``s`` smallest) is exactly the bottom-``s`` of the whole key space.  The
differential tests pin both halves: each group against a centralized
oracle restricted to that group's keys, and the merge against the
unrestricted oracle.

Every group is a full sampler of the base variant with the *same* site
count ``k`` — modeling the usual deployment where each physical ingest
node runs one site per shard group — so per-site memory aggregates by
summing site ``i`` across groups.

Cost model and execution backends: groups run on independent hardware in
the deployment this models, and *how* the simulation executes them is a
pluggable :class:`~repro.runtime.executor.ExecutionBackend`
(``SamplerConfig.executor``).  Under the default
:class:`~repro.runtime.executor.SerialExecutor` the groups ingest
sequentially in-process and per-group wall-clock is accumulated in
:attr:`ShardedSampler.group_ingest_seconds`, so the scale-out metric —
the **critical path**, i.e. the slowest group
(:attr:`ShardedSampler.critical_path_seconds`) — is a *simulated*
quantity.  Under the parallel backends each group's batch plan really
runs concurrently and the per-group timers hold measured wall-clock:
``executor="thread"`` replays plans against the parent's groups from a
thread pool (zero-copy, GIL-bound outside the NumPy kernels),
``executor="process"`` ships each plan plus group state to a
``multiprocessing`` pool per batch (the pickle tax), and
``executor="shm"`` keeps persistent workers that own their groups
across batches and map the batch's columns from shared memory
(zero-copy *and* multi-core; queries transparently re-synchronize the
parent's copies).  All backends are bit-identical, because every group
replays the same per-group delivery order under the same shared
sampling hash.  Message counts, by contrast, are a real total
either way: sharding does not reduce (and with ``S`` full-size samples
slightly increases) the paper's message metric; what it buys is
per-coordinator load ~``1/S`` and, under the process backend, real
multi-core ingest throughput.

With-replacement samplers are not shardable this way: their per-copy
samples are independent draws under *different* hash functions, so a
bottom-s merge across disjoint key spaces has no meaning there.  Compose
the other way around if needed (``s`` parallel sharded ``s=1`` groups).
"""

from __future__ import annotations

import time
from typing import Any, Iterable, Optional

import numpy as np
import numpy.typing as npt

from ..core.events import EventBatch
from ..core.protocol import (
    Event,
    Sampler,
    SampleResult,
    SamplerConfig,
    SamplerStats,
    iter_event_runs,
)
from ..errors import ConfigurationError, ProtocolError
from ..hashing.unit import UnitHasher
from ..netsim.network import MessageStats
from ..streams.partition import HashDistributor
from .executor import GroupPlan, make_executor
from .topology import aggregate_sampler_stats, merge_message_stats

__all__ = ["ShardedSampler"]

#: Salt for the key→group routing layer.  Distinct from the
#: :class:`HashDistributor` default so that an Engine hash-routing sites
#: with the same seed stays statistically independent of the shard
#: assignment (otherwise each group would only ever see a 1/S slice of
#: the sites).
_SHARD_SALT = 0x51A2DED0C0FFEE42


def _base_name(variant: str) -> str:
    """The base-variant registry key behind a ``sharded:<base>`` name."""
    return (
        variant.split(":", 1)[1] if variant.startswith("sharded:") else variant
    )


class ShardedSampler(Sampler):
    """S hash-partitioned coordinator groups behind one Sampler facade.

    Built through the registry (``make_sampler("sharded:<variant>",
    shards=S, ...)``); the groups are full samplers of the base variant
    sharing one sampling hash, and this facade owns only the routing and
    the query-time merge.

    Args:
        groups: The ``S`` coordinator groups (same variant, same seed,
            same site count).
        config: The facade's construction recipe (``variant`` is the
            ``sharded:<base>`` registry key; ``shards == len(groups)``;
            ``executor``/``workers`` select the execution backend).

    Raises:
        ConfigurationError: If ``groups`` is empty or its length does not
            match ``config.shards``.
    """

    def __init__(self, groups: list[Sampler], config: SamplerConfig) -> None:
        groups = list(groups)
        if not groups:
            raise ConfigurationError("shards must be >= 1, got 0")
        if len(groups) != config.shards:
            raise ConfigurationError(
                f"config.shards is {config.shards} but {len(groups)} "
                "groups were built"
            )
        self.groups = groups
        self._config = config
        self._router = HashDistributor(
            len(groups),
            seed=config.seed,
            algorithm=config.algorithm,
            salt=_SHARD_SALT,
        )
        #: Cumulative batch-ingest wall-clock per group, in seconds —
        #: in-process timers under the serial/thread executors, the
        #: workers' own measurements under the process/shm executors.
        self.group_ingest_seconds = [0.0] * len(groups)
        #: The execution backend (swappable; e.g. tests share one
        #: :class:`~repro.runtime.executor.ProcessExecutor` pool across
        #: many short-lived samplers).
        self.executor = make_executor(config)
        #: Monotonic per-group mutation counters.  Every path that can
        #: change a group's sample — single observe, advance, snapshot
        #: restore, or a batch plan shipped to an executor — bumps the
        #: owning group's counter, and the cached merged sample below is
        #: keyed on the whole vector, so a stale cache entry can only be
        #: dropped, never served.  Bumps are deliberately conservative
        #: (plan-build time, before execution): over-counting costs one
        #: cache miss, under-counting would be a correctness bug.
        self._group_generation = [0] * len(groups)
        self._merge_key: Optional[tuple[tuple[int, ...], Optional[int]]] = None
        self._merge_result: Optional[SampleResult] = None
        self._synced_key: Optional[tuple[int, ...]] = None
        #: Query-side observability: total queries answered (cached or
        #: cold) and executor syncs actually issued — the perf suite
        #: reports their ratio as ``syncs_per_query``.
        self.query_count = 0
        self.sync_count = 0
        self._init_protocol()

    def close(self) -> None:
        """Release the execution backend's resources (worker pool).

        Idempotent, and a no-op for the serial backend; the sampler
        remains usable — a process pool is re-created on the next batch.
        A stateful backend (``"shm"``) first collects every live
        session's worker-held group state back into its sampler, so no
        ingested data is lost by closing.
        """
        self.executor.close()

    def __enter__(self) -> "ShardedSampler":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()

    # -- routing -------------------------------------------------------------

    @property
    def shards(self) -> int:
        """Number of coordinator groups S."""
        return len(self.groups)

    @property
    def sampling_hasher(self) -> UnitHasher:
        """The shared sampling hash ``h`` (every group owns an equal
        hasher — same seed, same algorithm — so a hash column warmed
        under this instance is a cache hit for all of them)."""
        hasher: UnitHasher = self.groups[0].hasher
        return hasher

    def shard_of(self, item: Any) -> int:
        """The group that owns ``item``'s key (deterministic)."""
        return self._router.assign_one(item)

    # -- lifecycle -----------------------------------------------------------

    def _deliver(self, site_id: int, item: Any) -> None:
        """Deliver one item to its owning group's site (protocol hook)."""
        self.executor.invalidate(self)
        shard = self.shard_of(item)
        self._group_generation[shard] += 1
        self.groups[shard]._deliver(site_id, item)

    def _advance_to(self, slot: int) -> None:
        """Slot boundary: every group advances (independent maintenance)."""
        self.executor.invalidate(self)
        self._bump_all_generations()
        for group in self.groups:
            group.advance(slot)

    def observe_batch(self, events: Iterable[Event]) -> int:
        """Partitioned batch ingestion (semantics of the generic loop).

        Each same-slot run is split by owning group in one vectorized
        routing pass, then every group bulk-ingests its sub-run through
        its own fast path — in-process under the serial executor, in a
        worker process per group under the process executor.  Groups
        share no state, so per-group order (which both backends
        preserve) is all that matters — equivalence with the event loop
        is pinned by the batch-equivalence and property tests.
        Per-group wall-clock accumulates in :attr:`group_ingest_seconds`.
        """
        if isinstance(events, EventBatch):
            return self.observe_columns(events)
        events = events if isinstance(events, list) else list(events)
        if not events:
            return 0
        return self.executor.ingest_events(self, events)

    def observe_columns(self, batch: EventBatch) -> int:
        """Columnar ingestion: array-sliced shard split, zero tuples.

        Each same-slot run is routed with one vectorized shard-hash pass
        and :meth:`~repro.core.events.EventBatch.select` slices it into
        per-group sub-batches.  The serial backend additionally warms the
        shared *sampling*-hash column once per run so the groups never
        rehash; the process backend ships the raw column slices instead
        and lets every worker hash its own slice — in parallel.
        """
        batch.require_sites()
        if not len(batch):
            return 0
        return self.executor.ingest_columns(self, batch)

    # -- per-group plans (the process backend's unit of shipment) ------------

    def _plan_advance(
        self, plans: list[GroupPlan], slot: int, state: list[Any]
    ) -> None:
        """Append an ``advance`` task to every group's plan, replicating
        :meth:`~repro.core.protocol.Sampler.advance` semantics (monotone,
        idempotent) against ``state = [pending_last_slot, advances]``."""
        slot = int(slot)
        last = state[0]
        if last is not None:
            if slot < last:
                raise ProtocolError(
                    f"slots must be non-decreasing: now at {last}, "
                    f"got {slot}"
                )
            if slot == last:
                return
        for tasks in plans:
            tasks.append((slot, None))
        state[0] = slot
        state[1] += 1

    def _plan_events(
        self, events: list[Any]
    ) -> tuple[list[GroupPlan], Optional[int], int]:
        """Per-group ``(slot, None) | (None, batch)`` plans for a whole
        tuple-event call, plus the facade's pending slot bookkeeping.

        Slot stamps are validated up front (a non-monotone stamp raises
        *before* any delivery), so a plan that builds is safe to ship.
        """
        plans: list[GroupPlan] = [[] for _ in self.groups]
        state: list[Any] = [self._last_slot, 0]
        for slot, run in iter_event_runs(events):
            if slot is not None:
                self._plan_advance(plans, slot, state)
            if not run:
                continue
            if len(self.groups) == 1:
                plans[0].append((None, run))
                continue
            _, items = zip(*run)
            shard_ids = self._router.assignments_for(items)
            for shard in range(len(self.groups)):
                index = np.flatnonzero(shard_ids == shard)
                if index.size:
                    plans[shard].append(
                        (None, [run[i] for i in index.tolist()])
                    )
        self._bump_planned(plans)
        return plans, state[0], state[1]

    def _plan_columns(
        self,
        batch: EventBatch,
        warm_hasher: Optional[UnitHasher] = None,
    ) -> tuple[list[GroupPlan], Optional[int], int]:
        """Columnar twin of :meth:`_plan_events`: per-group column slices.

        With ``warm_hasher=None`` (the process backend) the shared
        sampling-hash column is deliberately *not* warmed — each worker
        hashes its own slice, in parallel (and
        :class:`~repro.core.events.EventBatch` drops derived hash caches
        when pickled, so nothing is shipped twice).  The thread and
        shared-memory backends pass the sampling hasher instead: the
        column is computed once per run in the parent — exactly like the
        serial path — and the per-group ``select`` *slices* it, so shm
        workers adopt views of one warmed column rather than rehashing.
        """
        plans: list[GroupPlan] = [[] for _ in self.groups]
        state: list[Any] = [self._last_slot, 0]
        for slot, run in batch.slot_runs():
            if slot is not None:
                self._plan_advance(plans, slot, state)
            if not len(run):
                continue
            if warm_hasher is not None:
                run.hash_column(warm_hasher)
            if len(self.groups) == 1:
                plans[0].append((None, run))
                continue
            shard_ids = self._router.assignments_for_batch(run)
            for shard in range(len(self.groups)):
                index = np.flatnonzero(shard_ids == shard)
                if index.size:
                    plans[shard].append((None, run.select(index)))
        self._bump_planned(plans)
        return plans, state[0], state[1]

    def _bump_planned(self, plans: list[GroupPlan]) -> None:
        """Invalidate the merge cache for every group a plan will touch.

        Called at plan-build time, before the backend executes: if the
        execution later fails the cache is merely cold, never stale.
        """
        for shard, tasks in enumerate(plans):
            if tasks:
                self._group_generation[shard] += 1

    def _bump_all_generations(self) -> None:
        generations = self._group_generation
        for shard in range(len(generations)):
            generations[shard] += 1

    def _commit_slots(self, last_slot: Optional[int], advances: int) -> None:
        """Adopt the slot bookkeeping of a successfully executed plan
        (the groups advanced inside their workers)."""
        if last_slot is not None:
            self._last_slot = last_slot
        self._slots_processed += advances

    def _deliver_columns(self, run: EventBatch) -> None:
        if not len(run):
            return
        timings = self.group_ingest_seconds
        groups = self.groups
        if len(groups) == 1:
            self._group_generation[0] += 1
            started = time.perf_counter()
            groups[0].observe_columns(run)
            timings[0] += time.perf_counter() - started
            return
        shard_ids = self._router.assignments_for_batch(run)
        # Warm the shared sampling-hash column on the full run so the
        # per-group select() slices it instead of rehashing per group.
        run.hash_column(groups[0].hasher)
        for shard in range(len(groups)):
            index = np.flatnonzero(shard_ids == shard)
            if not index.size:
                continue
            sub_run = run.select(index)
            self._group_generation[shard] += 1
            started = time.perf_counter()
            groups[shard].observe_columns(sub_run)
            timings[shard] += time.perf_counter() - started

    def _deliver_batch(self, batch: list[tuple[int, Any]]) -> None:
        if not batch:
            return
        timings = self.group_ingest_seconds
        if len(self.groups) == 1:
            self._group_generation[0] += 1
            started = time.perf_counter()
            self.groups[0].observe_batch(batch)
            timings[0] += time.perf_counter() - started
            return
        _, items = zip(*batch)  # one C-level transpose, no per-item listcomp
        shard_ids = self._router.assignments_for(items)
        for shard in range(len(self.groups)):
            index = np.flatnonzero(shard_ids == shard)
            if not index.size:
                continue
            sub_batch = [batch[i] for i in index.tolist()]
            self._group_generation[shard] += 1
            started = time.perf_counter()
            self.groups[shard].observe_batch(sub_batch)
            timings[shard] += time.perf_counter() - started

    # -- queries -------------------------------------------------------------

    def _generation_key(self) -> tuple[int, ...]:
        return tuple(self._group_generation)

    def _sync_if_stale(self) -> None:
        """Collect worker-held group state at most once per quiescent
        period: ``sample()``/``stats()``/``message_stats()``/
        ``state_dict()`` between two mutations share a single executor
        sync instead of forcing one each.  The executors themselves
        additionally collect only the groups that ingested since the
        last sync (dirty bits), so even the one sync is partial.
        """
        key = self._generation_key()
        if self._synced_key == key:
            return
        self.executor.sync(self)
        self.sync_count += 1
        self._synced_key = key

    def invalidate_merge_cache(self) -> None:
        """Drop the cached merged sample (benchmark/test hook).

        The next :meth:`sample` recomputes the merge from the group
        columns; the shared executor sync is *not* forced (it stays a
        no-op while no group mutated), so timing a query after this
        isolates the cold-merge cost.
        """
        self._merge_key = None
        self._merge_result = None

    def sample(self) -> SampleResult:
        """Query-time merge: bottom-s over the union of group samples.

        The merged :class:`~repro.core.protocol.SampleResult` is cached
        keyed on the per-group generation vector plus the current slot —
        repeated queries over a quiescent sampler (the
        :attr:`threshold` accessor, ``stats``-then-``sample`` call
        sequences, read-heavy serving traffic) return the cached object
        in O(1) with no executor sync and no re-merge.  A cold query
        merges the groups' sorted hash columns with array kernels; ties
        break deterministically by (hash, group, in-group index).
        """
        self.query_count += 1
        key = (self._generation_key(), self._last_slot)
        if self._merge_result is not None and self._merge_key == key:
            return self._merge_result
        self._sync_if_stale()
        result = self._merge_groups()
        self._merge_key = key
        self._merge_result = result
        return result

    def _merge_groups(self) -> SampleResult:
        """Cold merge: vectorized bottom-s over the group columns."""
        s = self._config.sample_size
        columns = [group.sample_columns() for group in self.groups]
        hashes = np.concatenate([hash_column for hash_column, _ in columns])
        items: list[Any] = []
        for _, group_items in columns:
            items.extend(group_items)
        order: npt.NDArray[np.intp]
        if hashes.size > s:
            # argpartition alone is free to order equal hashes that
            # straddle the pivot either way; re-ranking every pair tied
            # with the pivot through a stable argsort pins truncation to
            # the (hash, group, index) order — which is exactly ascending
            # position in the group-major concatenation, each group's
            # column already being sorted.
            pivot = hashes[np.argpartition(hashes, s - 1)[s - 1]]
            candidates = np.flatnonzero(hashes <= pivot)
            order = candidates[np.argsort(hashes[candidates], kind="stable")]
            order = order[:s]
        else:
            order = np.argsort(hashes, kind="stable")
        top_hashes: list[float] = hashes[order].tolist()
        top_items = [items[position] for position in order.tolist()]
        threshold = top_hashes[-1] if len(top_hashes) == s else 1.0
        return SampleResult(
            items=tuple(top_items),
            pairs=tuple(zip(top_hashes, top_items)),
            threshold=threshold,
            sample_size=s,
            window=self._config.window or None,
            slot=self.current_slot,
        )

    @property
    def threshold(self) -> float:
        """The merged sample's acceptance threshold (served from the
        merge cache — no executor sync, no re-merge while quiescent)."""
        return self.sample().threshold

    # -- cost accounting -----------------------------------------------------

    def message_stats(self) -> MessageStats:
        """Aggregate message counters across all S group transports."""
        self.query_count += 1
        self._sync_if_stale()
        return merge_message_stats(
            group.message_stats() for group in self.groups
        )

    def stats(self) -> SamplerStats:
        """Uniform cost counters, aggregated across the groups.

        ``per_site_memory[i]`` sums physical site ``i``'s footprint over
        its S shard-local sites (one per group).
        """
        self.query_count += 1
        self._sync_if_stale()
        return aggregate_sampler_stats(self.groups, self._slots_processed)

    @property
    def ingest_seconds(self) -> float:
        """Total batch-ingest wall-clock summed over groups (serial cost)."""
        return sum(self.group_ingest_seconds)

    @property
    def critical_path_seconds(self) -> float:
        """Batch-ingest wall-clock of the slowest group.

        The scale-out metric: groups are independent and run on separate
        hardware in the deployment this simulates, so elapsed time there
        is the per-group maximum, not the in-process serial sum.
        """
        return max(self.group_ingest_seconds)

    # -- introspection -------------------------------------------------------

    @property
    def num_sites(self) -> int:
        """Number of physical sites k (each runs one site per group)."""
        return self.groups[0].num_sites

    @property
    def sample_size(self) -> int:
        """Configured sample size s."""
        return self._config.sample_size

    @property
    def config(self) -> SamplerConfig:
        """The :class:`SamplerConfig` reconstructing this sampler."""
        return self._config

    # -- elastic resharding --------------------------------------------------

    def reshard(self, new_shards: int) -> "ShardedSampler":
        """Re-partition the S groups into ``new_shards`` groups, live.

        No resampling: every group shares the same sampling hash, so the
        retained bottom-s stores and window bookkeeping are re-routed
        under a new-count :class:`HashDistributor` (see
        :mod:`repro.runtime.reshard` for the exactness argument).  Any
        query after the reshard — and after arbitrary continued ingest —
        is bit-identical to a fresh ``new_shards`` sampler fed the same
        stream.  Per-group ingest timers restart at zero; aggregate
        message/report counters are preserved as totals.

        Returns ``self`` (re-configured in place, so existing references
        and executor sharing stay valid).

        Raises:
            ConfigurationError: For ``new_shards < 1`` or a variant whose
                group state cannot be re-partitioned.
        """
        from dataclasses import replace

        from ..core.api import get_variant
        from .reshard import repartition_group_states

        new_shards = int(new_shards)
        if new_shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {new_shards}")
        if new_shards == len(self.groups):
            return self
        # Pull worker-held state home first: the captured group states
        # must be canonical, and the old worker-side groups must not
        # survive the shard-count change.
        self.executor.invalidate(self)
        old_states = [group.state_dict() for group in self.groups]
        self.executor.release(self)
        new_states = repartition_group_states(
            old_states, self._config, new_shards
        )
        config = replace(self._config, shards=new_shards)
        base = get_variant(_base_name(config.variant))
        inner = replace(
            config, variant=_base_name(config.variant), shards=1,
            executor="serial", workers=0,
        )
        new_groups = [base.factory(inner) for _ in range(new_shards)]
        for group, group_state in zip(new_groups, new_states):
            group.load_state(group_state)
        self.groups = new_groups
        self._config = config
        self._router = HashDistributor(
            new_shards,
            seed=config.seed,
            algorithm=config.algorithm,
            salt=_SHARD_SALT,
        )
        self.group_ingest_seconds = [0.0] * new_shards
        self._group_generation = [0] * new_shards
        self._merge_key = None
        self._merge_result = None
        self._synced_key = None
        return self

    # -- persistence ---------------------------------------------------------

    def state_dict(self) -> dict[str, Any]:
        self._sync_if_stale()
        return {
            "protocol": {
                "last_slot": self._last_slot,
                "slots_processed": self._slots_processed,
            },
            "groups": [group.state_dict() for group in self.groups],
        }

    def load_state(self, state: dict[str, Any]) -> None:
        """Restore a sharded snapshot — taken at *any* shard count.

        A snapshot whose group count differs from this sampler's is
        re-partitioned first (:mod:`repro.runtime.reshard`), so an S=4
        snapshot restores into an S=8 or S=2 sampler exactly.  The
        restore is atomic: every group state is validated up front, and a
        failure inside the per-group load loop rolls the sampler back to
        its pre-call state before re-raising.

        Raises:
            ConfigurationError: For a malformed snapshot (the sampler is
                left exactly as it was).
        """
        self.executor.invalidate(self)
        try:
            protocol = state["protocol"]
            groups = state["groups"]
        except (KeyError, TypeError) as exc:
            raise ConfigurationError(f"malformed sampler state: {exc}") from exc
        if not isinstance(groups, list):
            raise ConfigurationError(
                "malformed sampler state: 'groups' must be a list, got "
                f"{type(groups).__name__}"
            )
        if len(groups) != len(self.groups):
            from .reshard import repartition_group_states

            groups = repartition_group_states(
                groups, self._config, len(self.groups)
            )
        # Parse the protocol fields before touching anything, then keep a
        # rollback copy so a failure on group k cannot leave the sampler
        # half-restored.
        last_slot = protocol.get("last_slot")
        last_slot = None if last_slot is None else int(last_slot)
        slots_processed = int(protocol.get("slots_processed", 0))
        backup_protocol = (self._last_slot, self._slots_processed)
        backup_groups = [group.state_dict() for group in self.groups]
        loaded = 0
        try:
            for group, group_state in zip(self.groups, groups):
                group.load_state(group_state)
                loaded += 1
        except Exception:
            # The failing group may itself be half-loaded — roll it back
            # along with every group already restored.
            touched = backup_groups[: loaded + 1]
            for group, group_state in zip(self.groups, touched):
                group.load_state(group_state)
            self._bump_all_generations()
            raise
        self._last_slot = last_slot
        self._slots_processed = slots_processed
        self._bump_all_generations()

    def _state(self) -> dict[str, Any]:  # pragma: no cover - unused
        raise NotImplementedError

    def _load(self, state: dict[str, Any]) -> None:  # pragma: no cover
        raise NotImplementedError
