"""repro — Distinct Random Sampling from a Distributed Stream.

A from-scratch Python reproduction of Chung & Tirthapura's distributed
distinct sampling system (M.S. thesis, Iowa State, 2013; IPDPS 2015):
continuous maintenance, at a coordinator, of a uniform random sample of the
*distinct* elements observed across ``k`` distributed stream-monitoring
sites, with provably near-optimal message complexity — plus the sliding-
window extension, the Broadcast baseline, lower-bound machinery, and the
full experimental harness for the paper's Table 5.1 and Figures 5.1–5.10.

Quickstart::

    from repro import make_sampler

    system = make_sampler("infinite", num_sites=5, sample_size=10, seed=42)
    system.observe(0, "alice")      # site 0 saw "alice"
    system.observe(3, "bob")        # site 3 saw "bob"
    system.observe(1, "alice")      # duplicates never skew the sample
    print(system.sample().items)    # uniform sample of distinct elements
    print(system.stats().messages_total)  # the paper's cost metric

See DESIGN.md for the system inventory and EXPERIMENTS.md for
paper-vs-measured results.
"""

from ._version import __version__
from .core import (
    BroadcastSamplerSystem,
    CachingSamplerSystem,
    CentralizedDistinctSampler,
    CentralizedWindowSampler,
    DistinctSamplerSystem,
    EventBatch,
    Sampler,
    SampleResult,
    SamplerConfig,
    SamplerStats,
    SamplerVariant,
    SlidingWindowBottomS,
    SlidingWindowBottomSFeedback,
    SlidingWindowSystem,
    SlidingWindowWithReplacement,
    WithReplacementSampler,
    get_variant,
    infinite_window_sampler,
    make_sampler,
    register_variant,
    restore,
    sampler_variants,
    sliding_window_sampler,
    snapshot,
    with_replacement_sampler,
)
from .errors import (
    ConfigurationError,
    DatasetError,
    EstimationError,
    ExecutorError,
    ProtocolError,
    ReproError,
)
from .hashing import SeededHashFamily, UnitHasher
from .runtime import (
    Engine,
    ProcessExecutor,
    SerialExecutor,
    SharedMemoryExecutor,
    ShardedSampler,
    ThreadExecutor,
    Topology,
)

__all__ = [
    "__version__",
    "EventBatch",
    "Sampler",
    "SampleResult",
    "SamplerConfig",
    "SamplerStats",
    "SamplerVariant",
    "make_sampler",
    "register_variant",
    "sampler_variants",
    "get_variant",
    "infinite_window_sampler",
    "sliding_window_sampler",
    "with_replacement_sampler",
    "DistinctSamplerSystem",
    "SlidingWindowBottomSFeedback",
    "BroadcastSamplerSystem",
    "CachingSamplerSystem",
    "snapshot",
    "restore",
    "SlidingWindowSystem",
    "SlidingWindowBottomS",
    "WithReplacementSampler",
    "SlidingWindowWithReplacement",
    "CentralizedDistinctSampler",
    "CentralizedWindowSampler",
    "Engine",
    "ProcessExecutor",
    "SerialExecutor",
    "SharedMemoryExecutor",
    "ShardedSampler",
    "ThreadExecutor",
    "Topology",
    "UnitHasher",
    "SeededHashFamily",
    "ReproError",
    "ConfigurationError",
    "ProtocolError",
    "ExecutorError",
    "DatasetError",
    "EstimationError",
]
