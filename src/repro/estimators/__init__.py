"""Estimators consuming distinct samples: F0 counting and predicate queries."""

from .distinct_count import (
    DistinctCountEstimate,
    estimate_from_sampler,
    kmv_estimate,
)
from .predicate import (
    PredicateEstimate,
    estimate_count,
    estimate_fraction,
    estimate_mean,
)
from .quantiles import QuantileEstimate, estimate_cdf_band, estimate_quantile

__all__ = [
    "DistinctCountEstimate",
    "kmv_estimate",
    "estimate_from_sampler",
    "PredicateEstimate",
    "estimate_fraction",
    "estimate_count",
    "estimate_mean",
    "QuantileEstimate",
    "estimate_quantile",
    "estimate_cdf_band",
]
