"""Estimators consuming distinct samples: F0 counting, heavy hitters,
predicate and quantile queries, plus the windowed query surface over the
``Sampler`` protocol and an independent exponential-histogram baseline."""

from .distinct_count import (
    DistinctCountEstimate,
    estimate_from_sampler,
    kmv_estimate,
)
from .eh_distinct import SlidingDistinctCounterEH
from .heavy_hitters import HeavyHitterEstimate, estimate_heavy_hitters
from .predicate import (
    PredicateEstimate,
    estimate_count,
    estimate_fraction,
    estimate_mean,
)
from .quantiles import QuantileEstimate, estimate_cdf_band, estimate_quantile
from .windowed import (
    windowed_count,
    windowed_distinct,
    windowed_fraction,
    windowed_heavy_hitters,
    windowed_quantile,
    windowed_sample,
)

__all__ = [
    "DistinctCountEstimate",
    "kmv_estimate",
    "estimate_from_sampler",
    "SlidingDistinctCounterEH",
    "HeavyHitterEstimate",
    "estimate_heavy_hitters",
    "PredicateEstimate",
    "estimate_fraction",
    "estimate_count",
    "estimate_mean",
    "QuantileEstimate",
    "estimate_quantile",
    "estimate_cdf_band",
    "windowed_sample",
    "windowed_distinct",
    "windowed_fraction",
    "windowed_count",
    "windowed_quantile",
    "windowed_heavy_hitters",
]
