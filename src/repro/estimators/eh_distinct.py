"""A txstatsd-style probabilistic sliding-window distinct counter.

An *independent* comparison baseline for the sampler-derived KMV
estimator, adapted from txstatsd's ``SlidingDistinctCounter`` (itself a
Flajolet–Martin counter crossed with Datar et al.'s sliding-window
exponential-histogram bookkeeping): ``n_hashes`` hash functions each own a
row of ``n_buckets`` buckets indexed by the number of trailing zero bits
of the hashed element; instead of a sticky bit, every bucket stores the
**most recent slot** that touched it.  A query "distinct since slot ``t``"
then reads, per row, the length of the prefix of buckets still live
(touched after ``t``) — exactly the FM "first gap" statistic restricted to
the window — and converts the across-row mean ``v`` through the classical
``2^v / 0.77351`` correction.

Differences from the exemplar, deliberate:

* deterministic — hashing is :func:`~repro.hashing.murmur.fmix64_array`
  under per-row salts drawn from a seeded generator, never process-global
  randomness;
* columnar — ``add_batch`` ingests whole NumPy columns (one vectorized
  mix + scatter-max per row) so the accuracy harness can replay perf-suite
  workloads at full size;
* windowed queries take the window from construction, matching the slot
  semantics of this package's sliding samplers (an element is live when
  its last arrival lies in the final ``window`` slots).

Accuracy is coarse (the estimate is a power of two smoothed across rows,
relative error ~``O(1/sqrt(n_hashes))`` in the exponent) — that is the
point: it brackets the KMV estimator from an entirely different family,
so a bug that skews the maintained sample shows up as the two estimators
drifting apart.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import numpy.typing as npt

from ..errors import ConfigurationError, EstimationError
from ..hashing.murmur import fmix64_array

__all__ = ["SlidingDistinctCounterEH"]

#: Flajolet–Martin bias correction: E[2^v] ≈ 0.77351 · d.
_FM_PHI = 0.77351

#: Slot sentinel meaning "never touched" (below any real slot stamp).
_NEVER = np.iinfo(np.int64).min // 2


class SlidingDistinctCounterEH:
    """Probabilistic distinct counter over sliding slot windows.

    Args:
        n_hashes: Independent hash rows averaged together (more rows =
            tighter estimate; relative error shrinks like
            ``1/sqrt(n_hashes)`` in the exponent).
        n_buckets: Trailing-zero buckets per row (caps the countable
            range at ~``2**n_buckets``).
        seed: Seed for the per-row hash salts (equal seeds = equal
            estimates, the determinism contract of the accuracy harness).
        window: Window size in slots; 0 means infinite (a query counts
            everything ever added).

    Raises:
        ConfigurationError: On non-positive row/bucket counts or a
            negative window.
    """

    __slots__ = ("n_hashes", "n_buckets", "window", "_salts", "_buckets", "_last_slot")

    def __init__(
        self,
        n_hashes: int = 32,
        n_buckets: int = 32,
        seed: int = 0,
        window: int = 0,
    ) -> None:
        if n_hashes < 1:
            raise ConfigurationError(f"n_hashes must be >= 1, got {n_hashes}")
        if n_buckets < 1:
            raise ConfigurationError(f"n_buckets must be >= 1, got {n_buckets}")
        if window < 0:
            raise ConfigurationError(f"window must be >= 0, got {window}")
        self.n_hashes = n_hashes
        self.n_buckets = n_buckets
        self.window = window
        rng = np.random.default_rng(seed)
        self._salts = rng.integers(
            0, np.iinfo(np.uint64).max, size=n_hashes, dtype=np.uint64
        )
        # bucket[row][z] = last slot whose element had z trailing zeros
        # under row's hash; -inf (here: a sentinel below any slot) = never.
        self._buckets = np.full((n_hashes, n_buckets), _NEVER, dtype=np.int64)
        self._last_slot = 0

    # -- ingestion ---------------------------------------------------------

    def add(self, item: int, slot: int = 0) -> None:
        """Record one item arriving at ``slot``."""
        self.add_batch(np.asarray([item], dtype=np.int64), slot=slot)

    def add_batch(
        self,
        items: npt.ArrayLike,
        slots: Optional[npt.ArrayLike] = None,
        slot: int = 0,
    ) -> int:
        """Record a column of items; returns the number added.

        Args:
            items: Integer element ids (any shape coercible to 1-D int64).
            slots: Optional per-item slot stamps (same length).  When
                omitted every item arrives at ``slot``.
            slot: The shared slot stamp used when ``slots`` is None.
        """
        column = np.asarray(items, dtype=np.int64).ravel()
        if not column.size:
            return 0
        if slots is None:
            stamps = np.full(column.size, int(slot), dtype=np.int64)
        else:
            stamps = np.asarray(slots, dtype=np.int64).ravel()
            if stamps.size != column.size:
                raise ConfigurationError(
                    f"slots column has {stamps.size} entries for "
                    f"{column.size} items"
                )
        keys = column.view(np.uint64)
        cap = np.int64(self.n_buckets - 1)
        for row in range(self.n_hashes):
            hashed = fmix64_array(keys ^ self._salts[row])
            # Trailing-zero count: isolate the lowest set bit; a power of
            # two is exact in float64, so log2 recovers the bit index.
            lowest = hashed & (~hashed + np.uint64(1))
            zeros = np.where(
                hashed == 0,
                cap,
                np.log2(np.maximum(lowest, np.uint64(1)).astype(np.float64))
                .astype(np.int64),
            )
            np.maximum.at(
                self._buckets[row], np.minimum(zeros, cap), stamps
            )
        self._last_slot = max(self._last_slot, int(stamps.max()))
        return int(column.size)

    # -- queries -----------------------------------------------------------

    @property
    def last_slot(self) -> int:
        """The most recent slot stamp ever added (0 before any add)."""
        return self._last_slot

    def distinct(self, since: Optional[int] = None) -> float:
        """Estimated distinct count of items added in slots > ``since``.

        Args:
            since: Exclusive lower slot bound.  None derives it from the
                configured window (``last_slot - window``; an infinite
                window counts everything).

        Returns:
            The FM estimate ``2^v / 0.77351`` with ``v`` the across-row
            mean live-prefix length, 0.0 when no bucket is live.

        Raises:
            EstimationError: If an explicit ``since`` lies in the future
                (beyond the last slot added).
        """
        if since is None:
            if self.window:
                since = self._last_slot - self.window
            else:
                since = _NEVER
        elif since > self._last_slot:
            raise EstimationError(
                f"since={since} is beyond the last added slot "
                f"{self._last_slot}"
            )
        live = self._buckets > np.int64(since)
        # Per row: length of the live prefix (argmin finds the first dead
        # bucket; an all-live row counts every bucket).
        first_dead = np.argmin(live, axis=1)
        prefix = np.where(live.all(axis=1), self.n_buckets, first_dead)
        if not prefix.any():
            return 0.0
        v = float(prefix.mean())
        return float(2.0**v / _FM_PHI)

    def state_size(self) -> int:
        """Total buckets held (``n_hashes * n_buckets``), for cost tables."""
        return self.n_hashes * self.n_buckets

    def relative_band(self) -> float:
        """Half-width of the ~95 % multiplicative band around an estimate.

        The FM exponent has standard deviation ~1.12 across rows; the
        mean of ``n_hashes`` rows tightens it by ``sqrt(n_hashes)``, and
        two standard deviations in the exponent translate to the
        multiplicative factor returned here (``estimate * 2**±band``).
        """
        return 2.24 / float(np.sqrt(self.n_hashes))
