"""Quantile estimation over distinct elements.

The paper's motivating queries include order statistics of an attribute
over the *distinct* population ("what is the median session length of
distinct visitors?").  A uniform distinct sample answers these directly:
the sample's empirical quantile estimates the population quantile, with
distribution-free Dvoretzky–Kiefer–Wolfowitz (DKW) error bounds

    sup_q |F̂(q) − F(q)| ≤ ε   with prob ≥ 1 − δ,   ε = sqrt(ln(2/δ) / 2s).

Because the sample is *distinct*-uniform, frequency skew in the stream is
irrelevant — a property frequency-sensitive samples cannot offer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from ..errors import EstimationError

__all__ = ["QuantileEstimate", "estimate_quantile", "estimate_cdf_band"]


@dataclass(frozen=True, slots=True)
class QuantileEstimate:
    """An estimated quantile with DKW-style rank error bounds.

    Attributes:
        q: The requested quantile in (0, 1).
        value: The sample's empirical q-quantile.
        low: Value at the DKW-lower rank (conservative lower bound).
        high: Value at the DKW-upper rank (conservative upper bound).
        epsilon: The DKW rank deviation at the chosen confidence.
        sample_size: Number of values used.
    """

    q: float
    value: float
    low: float
    high: float
    epsilon: float
    sample_size: int


def _dkw_epsilon(n: int, delta: float) -> float:
    return math.sqrt(math.log(2.0 / delta) / (2.0 * n))


def estimate_quantile(
    sample: Sequence[Any],
    q: float,
    value_fn: Callable[[Any], float] = float,
    delta: float = 0.05,
) -> QuantileEstimate:
    """Estimate the q-quantile of ``value_fn`` over distinct elements.

    Args:
        sample: A uniform distinct sample.
        q: Quantile in (0, 1).
        value_fn: Numeric attribute extractor.
        delta: Failure probability of the DKW band (default 5 %).

    Returns:
        A :class:`QuantileEstimate`.

    Raises:
        EstimationError: For an empty sample or q outside (0, 1).
    """
    if not 0.0 < q < 1.0:
        raise EstimationError(f"quantile must be in (0, 1), got {q}")
    if not 0.0 < delta < 1.0:
        raise EstimationError(f"delta must be in (0, 1), got {delta}")
    values = sorted(value_fn(element) for element in sample)
    n = len(values)
    if n == 0:
        raise EstimationError("cannot estimate a quantile from an empty sample")
    epsilon = _dkw_epsilon(n, delta)

    def at_rank(rank_fraction: float) -> float:
        index = min(max(int(math.ceil(rank_fraction * n)) - 1, 0), n - 1)
        return values[index]

    return QuantileEstimate(
        q=q,
        value=at_rank(q),
        low=at_rank(max(q - epsilon, 0.0) if q - epsilon > 0 else 1.0 / n / 2),
        high=at_rank(min(q + epsilon, 1.0)),
        epsilon=epsilon,
        sample_size=n,
    )


def estimate_cdf_band(
    sample: Sequence[Any],
    points: Sequence[float],
    value_fn: Callable[[Any], float] = float,
    delta: float = 0.05,
) -> list[tuple[float, float, float, float]]:
    """Empirical CDF of ``value_fn`` over distinct elements, with a DKW band.

    Args:
        sample: A uniform distinct sample.
        points: Values at which to evaluate the CDF.
        value_fn: Numeric attribute extractor.
        delta: Failure probability for the *simultaneous* band.

    Returns:
        A list of ``(point, cdf_low, cdf_hat, cdf_high)`` tuples.

    Raises:
        EstimationError: For an empty sample.
    """
    values = sorted(value_fn(element) for element in sample)
    n = len(values)
    if n == 0:
        raise EstimationError("cannot estimate a CDF from an empty sample")
    epsilon = _dkw_epsilon(n, delta)
    out = []
    for point in points:
        # Count of values <= point via linear scan (samples are small).
        count = 0
        for v in values:
            if v <= point:
                count += 1
            else:
                break
        cdf = count / n
        out.append(
            (point, max(cdf - epsilon, 0.0), cdf, min(cdf + epsilon, 1.0))
        )
    return out
