"""Predicate (subset) queries over a distinct sample.

The paper's motivating queries: "how many distinct visitors ... come from a
particular country?", "what is the average age of the distinct users?" —
i.e. aggregates over the subset of *distinct* elements satisfying a
predicate supplied only at query time.

Given a uniform without-replacement distinct sample ``S`` of size ``s``
from a population of ``d`` distinct elements:

* the fraction of distinct elements satisfying predicate ``P`` is estimated
  by the sample fraction ``p̂`` with hypergeometric (≈ binomial) error;
* the *count* is ``p̂ · d̂`` where ``d̂`` comes from the KMV estimator —
  both factors derive from the same sketch, no extra passes needed;
* a mean of ``f(e)`` over distinct elements satisfying ``P`` is the sample
  mean over the matching sample members.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from ..errors import EstimationError
from .distinct_count import DistinctCountEstimate

__all__ = ["PredicateEstimate", "estimate_fraction", "estimate_count", "estimate_mean"]


@dataclass(frozen=True, slots=True)
class PredicateEstimate:
    """An estimated aggregate over distinct elements matching a predicate.

    Attributes:
        value: Point estimate.
        std_error: Approximate standard error.
        low: ~95 % interval lower bound.
        high: ~95 % interval upper bound.
        matched: Number of sample members matching the predicate.
        sample_size: Sample size used.
    """

    value: float
    std_error: float
    low: float
    high: float
    matched: int
    sample_size: int


def estimate_fraction(
    sample: Sequence[Any], predicate: Callable[[Any], bool]
) -> PredicateEstimate:
    """Estimate the fraction of *distinct* elements satisfying ``predicate``.

    Args:
        sample: A uniform distinct sample (e.g. ``system.sample()``).
        predicate: Boolean test applied to each sample member.

    Returns:
        A :class:`PredicateEstimate` of the population fraction.  When no
        sample member matches, the point estimate is 0.0 and the interval
        is the rule-of-three band ``[0, 3/s]`` (symmetrically ``[1-3/s, 1]``
        when every member matches).

    Raises:
        EstimationError: If the sample is empty.
    """
    n = len(sample)
    if n == 0:
        raise EstimationError("cannot estimate from an empty sample")
    matched = sum(1 for element in sample if predicate(element))
    p = matched / n
    std_error = math.sqrt(max(p * (1.0 - p) / n, 0.0))
    low = max(0.0, p - 1.96 * std_error)
    high = min(1.0, p + 1.96 * std_error)
    if matched == 0:
        # Documented degenerate estimate: with zero matches the normal
        # interval collapses to [0, 0]; the rule of three restores the
        # standard 95 % upper bound for an all-failure Bernoulli sample.
        high = min(1.0, 3.0 / n)
    elif matched == n:
        low = max(0.0, 1.0 - 3.0 / n)
    return PredicateEstimate(
        value=p,
        std_error=std_error,
        low=low,
        high=high,
        matched=matched,
        sample_size=n,
    )


def estimate_count(
    sample: Sequence[Any],
    predicate: Callable[[Any], bool],
    distinct_count: DistinctCountEstimate,
) -> PredicateEstimate:
    """Estimate the *number* of distinct elements satisfying ``predicate``.

    Combines the sample fraction with a distinct-count estimate (error
    propagation assumes independence, adequate for s >= ~16).

    Args:
        sample: A uniform distinct sample.
        predicate: Boolean test.
        distinct_count: Output of the KMV estimator over the same sketch.

    Returns:
        A :class:`PredicateEstimate` of the matching distinct count.
    """
    frac = estimate_fraction(sample, predicate)
    d_hat = distinct_count.estimate
    value = frac.value * d_hat
    # Var(p̂·d̂) ≈ d̂²·Var(p̂) + p̂²·Var(d̂) for independent factors.
    var = (d_hat * frac.std_error) ** 2 + (frac.value * distinct_count.std_error) ** 2
    std_error = math.sqrt(var)
    return PredicateEstimate(
        value=value,
        std_error=std_error,
        low=max(0.0, value - 1.96 * std_error),
        high=value + 1.96 * std_error,
        matched=frac.matched,
        sample_size=frac.sample_size,
    )


def estimate_mean(
    sample: Sequence[Any],
    value_fn: Callable[[Any], float],
    predicate: Optional[Callable[[Any], bool]] = None,
) -> PredicateEstimate:
    """Estimate the mean of ``value_fn`` over distinct elements.

    Args:
        sample: A uniform distinct sample.
        value_fn: Numeric attribute of an element (e.g. "age of the user").
        predicate: Optional filter; the mean is over matching distinct
            elements only.

    Returns:
        A :class:`PredicateEstimate` of the population mean.

    Raises:
        EstimationError: If no sample member matches.
    """
    values = [
        value_fn(element)
        for element in sample
        if predicate is None or predicate(element)
    ]
    if not values:
        raise EstimationError("no sample member matches the predicate")
    n = len(values)
    mean = sum(values) / n
    if n > 1:
        var = sum((v - mean) ** 2 for v in values) / (n - 1)
        std_error = math.sqrt(var / n)
    else:
        var = 0.0
        std_error = float("inf")
    return PredicateEstimate(
        value=mean,
        std_error=std_error,
        low=mean - 1.96 * std_error if n > 1 else -math.inf,
        high=mean + 1.96 * std_error if n > 1 else math.inf,
        matched=n,
        sample_size=len(sample),
    )
