"""Windowed query surface: estimators driven off any ``Sampler`` facade.

The lower-level estimators in this package consume raw samples; this
module is the runtime query layer on top of the unified
:class:`~repro.core.protocol.Sampler` protocol, so the same five queries
run unchanged against every registered variant — centralized or
``sharded:*`` (where ``sample()`` is the provably-global merged bottom-s
sample), serial or process-executed, infinite or sliding.

Semantics: every estimate targets the **distinct population the sampler
maintains** — the live window's distinct elements for windowed variants,
the full history for infinite ones (``SampleResult.window`` tells which).

Degenerate cases are part of the contract (exercised by the accuracy
edge-case tests):

* **empty window** (everything expired, or nothing ever arrived) —
  :func:`windowed_distinct` returns the *exact* estimate 0; the
  sample-consuming queries (:func:`windowed_fraction`,
  :func:`windowed_quantile`, :func:`windowed_heavy_hitters`) raise
  :class:`~repro.errors.EstimationError`, because a fraction or quantile
  of an empty population is undefined;
* **window smaller than s** (fewer distinct elements than the sample
  holds) — the sample *is* the population, so :func:`windowed_distinct`
  is exact and the other queries are census answers with the usual
  (conservative) bounds;
* **all-duplicate stream** — one distinct element: distinct count exactly
  1, fractions exactly 0 or 1;
* **zero-match predicate** — :func:`windowed_fraction` returns the
  rule-of-three degenerate band (see
  :func:`~repro.estimators.predicate.estimate_fraction`).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..core.protocol import Sampler, SampleResult
from ..errors import EstimationError
from .distinct_count import DistinctCountEstimate, kmv_estimate
from .heavy_hitters import HeavyHitterEstimate, estimate_heavy_hitters
from .predicate import PredicateEstimate, estimate_count, estimate_fraction
from .quantiles import QuantileEstimate, estimate_quantile

__all__ = [
    "windowed_sample",
    "windowed_distinct",
    "windowed_fraction",
    "windowed_count",
    "windowed_quantile",
    "windowed_heavy_hitters",
]


def windowed_sample(sampler: Sampler) -> SampleResult:
    """The sampler's current sample, validated for estimation use.

    Raises:
        EstimationError: If the sampler produces a with-replacement
            sample (the bottom-s estimators need without-replacement).
    """
    result = sampler.sample()
    if result.with_replacement:
        raise EstimationError(
            "windowed estimation needs a without-replacement bottom-s "
            "sample; with-replacement variants are not supported"
        )
    return result


def windowed_distinct(sampler: Sampler) -> DistinctCountEstimate:
    """Distinct count of the maintained population (KMV over the sample).

    For windowed samplers this is the sliding-window distinct count at
    the current slot; an empty window yields the exact estimate 0, and a
    window holding fewer than ``s`` distinct elements is counted exactly
    (the sample is under-full, so it *is* the population).

    Raises:
        EstimationError: For with-replacement samples or inconsistent
            sketch state.
    """
    result = windowed_sample(sampler)
    if result.threshold is None:
        raise EstimationError(
            "sampler exposes no bottom-s threshold; cannot run KMV"
        )
    return kmv_estimate(result.sample_size, result.threshold, len(result))


def _require_members(result: SampleResult, query: str) -> SampleResult:
    if not len(result):
        raise EstimationError(
            f"cannot estimate a {query} over an empty window "
            "(the maintained population is empty)"
        )
    return result


def windowed_fraction(
    sampler: Sampler, predicate: Callable[[Any], bool]
) -> PredicateEstimate:
    """Fraction of the maintained distinct population matching ``predicate``.

    Raises:
        EstimationError: If the window is empty (no population to query).
    """
    result = _require_members(windowed_sample(sampler), "predicate fraction")
    return estimate_fraction(result, predicate)


def windowed_count(
    sampler: Sampler,
    predicate: Callable[[Any], bool],
    distinct_count: Optional[DistinctCountEstimate] = None,
) -> PredicateEstimate:
    """Number of distinct elements in the window matching ``predicate``.

    Args:
        sampler: Any without-replacement bottom-s sampler facade.
        predicate: Boolean test over elements.
        distinct_count: Optional precomputed KMV estimate (defaults to
            :func:`windowed_distinct` over the same sampler).

    Raises:
        EstimationError: If the window is empty.
    """
    result = _require_members(windowed_sample(sampler), "predicate count")
    if distinct_count is None:
        distinct_count = windowed_distinct(sampler)
    return estimate_count(result, predicate, distinct_count)


def windowed_quantile(
    sampler: Sampler,
    q: float,
    value_fn: Callable[[Any], float] = float,
    delta: float = 0.05,
) -> QuantileEstimate:
    """The q-quantile of ``value_fn`` over the maintained population.

    Raises:
        EstimationError: If the window is empty or ``q``/``delta`` are
            out of range.
    """
    result = _require_members(windowed_sample(sampler), "quantile")
    return estimate_quantile(result, q, value_fn=value_fn, delta=delta)


def windowed_heavy_hitters(
    sampler: Sampler,
    key_fn: Callable[[Any], Any],
    threshold: float = 0.0,
    with_counts: bool = False,
) -> list[HeavyHitterEstimate]:
    """Groups holding ≥ ``threshold`` of the window's distinct population.

    Args:
        sampler: Any without-replacement bottom-s sampler facade.
        key_fn: Maps an element to its group key.
        threshold: Minimum estimated share to report.
        with_counts: Also attach absolute distinct-count bounds (runs the
            KMV estimator over the same sample).

    Raises:
        EstimationError: If the window is empty.
    """
    result = _require_members(windowed_sample(sampler), "heavy-hitter set")
    distinct_count = windowed_distinct(sampler) if with_counts else None
    return estimate_heavy_hitters(
        result, key_fn, threshold=threshold, distinct_count=distinct_count
    )
