"""Distinct-count (F0) estimation from a bottom-s sample — the KMV estimator.

A bottom-s distinct sample carries more than the sample members: the
threshold ``u`` (the s-th smallest hash) is itself an estimator of the
distinct count.  If ``d`` distinct elements map to i.i.d. Uniform(0,1)
hashes, the s-th order statistic concentrates around ``s/d``, and the
classical unbiased KMV ("k minimum values", Bar-Yossef et al. 2002)
estimator is::

    d̂ = (s - 1) / u

with relative standard error approximately ``1/sqrt(s - 2)``.

This is the "simple distinct count query" use-case the paper motivates
distinct samples with; the estimator consumes any of this package's
samplers through their ``sample_pairs()``/``threshold`` surface.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import EstimationError

__all__ = ["DistinctCountEstimate", "kmv_estimate", "estimate_from_sampler"]


@dataclass(frozen=True, slots=True)
class DistinctCountEstimate:
    """A distinct-count estimate with a normal-approximation interval.

    Attributes:
        estimate: Point estimate d̂.
        std_error: Approximate standard error of d̂.
        low: Lower bound of the ~95 % confidence interval (clamped >= s).
        high: Upper bound of the ~95 % confidence interval.
        sample_size: The s used.
        exact: True if the estimate is exact (sample not yet full: the
            sample *is* the distinct set).
    """

    estimate: float
    std_error: float
    low: float
    high: float
    sample_size: int
    exact: bool


def kmv_estimate(sample_size: int, threshold: float, retained: int) -> DistinctCountEstimate:
    """KMV distinct-count estimate from bottom-s sketch state.

    Args:
        sample_size: Configured sample size s.
        threshold: The s-th smallest hash u (1.0 if the sketch is not full).
        retained: Number of elements currently retained (min(s, d)).

    Returns:
        A :class:`DistinctCountEstimate`.  While the sketch is under-full
        the count is known exactly (d = retained).

    Raises:
        EstimationError: If inputs are inconsistent (e.g. full sketch with
            threshold 1.0 would divide by ~0 meaninglessly).
    """
    if retained < 0 or sample_size < 1:
        raise EstimationError(
            f"invalid sketch state: s={sample_size}, retained={retained}"
        )
    if retained < sample_size:
        exact = float(retained)
        return DistinctCountEstimate(
            estimate=exact,
            std_error=0.0,
            low=exact,
            high=exact,
            sample_size=sample_size,
            exact=True,
        )
    if not (0.0 < threshold <= 1.0):
        raise EstimationError(f"threshold must be in (0, 1], got {threshold}")
    if sample_size < 2:
        # (s-1)/u degenerates for s = 1; fall back to the ML-ish 1/u.
        est = 1.0 / threshold
        return DistinctCountEstimate(
            estimate=est,
            std_error=est,  # RSE ~ 100 % for a single order statistic
            low=float(sample_size),
            high=3.0 * est,
            sample_size=sample_size,
            exact=False,
        )
    est = (sample_size - 1) / threshold
    rse = 1.0 / math.sqrt(max(sample_size - 2, 1))
    std_error = est * rse
    return DistinctCountEstimate(
        estimate=est,
        std_error=std_error,
        low=max(float(sample_size), est - 1.96 * std_error),
        high=est + 1.96 * std_error,
        sample_size=sample_size,
        exact=False,
    )


def estimate_from_sampler(sampler) -> DistinctCountEstimate:
    """Estimate the distinct count from any bottom-s sampler facade.

    Args:
        sampler: Any :class:`~repro.core.protocol.Sampler` whose
            ``sample()`` returns a without-replacement
            :class:`~repro.core.protocol.SampleResult` (for sliding
            variants the estimate covers the window's distinct count),
            or a legacy facade exposing ``sample()``/``threshold``/
            ``sample_size`` like
            :class:`~repro.core.centralized.CentralizedDistinctSampler`.

    Returns:
        A :class:`DistinctCountEstimate`.
    """
    from ..core.protocol import SampleResult

    result = sampler.sample()
    if isinstance(result, SampleResult):
        if result.with_replacement or result.threshold is None:
            raise EstimationError(
                "KMV estimation needs a without-replacement bottom-s sample"
            )
        return kmv_estimate(result.sample_size, result.threshold, len(result))
    return kmv_estimate(sampler.sample_size, sampler.threshold, len(result))
