"""Heavy-hitter groups over the *distinct* population, from a bottom-s sample.

A uniform distinct sample supports a flavour of heavy-hitter query the
frequency sketches cannot: "which groups contain the largest share of the
**distinct** elements?" — e.g. which country contributes the most distinct
visitors, regardless of how often each visitor returns.  Group membership
is decided by a ``key_fn`` supplied only at query time.

Given a uniform without-replacement distinct sample ``S`` of size ``s``:

* a group's share of the distinct population is estimated by its sample
  share ``p̂ = matched / s`` with binomial (≈ hypergeometric) error bounds
  — the *frequency bounds* attached to each reported hitter;
* its absolute distinct count is ``p̂ · d̂`` with the KMV estimator's d̂,
  both factors read off the same merged sketch (sharded samplers included:
  the query-time bottom-s merge is exactly the global sample, so the
  bounds hold unchanged over ``sharded:*`` variants).

Because the sample is distinct-uniform, stream repetition skew cannot
promote a group: only its distinct membership counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from ..errors import EstimationError
from .distinct_count import DistinctCountEstimate

__all__ = ["HeavyHitterEstimate", "estimate_heavy_hitters"]


@dataclass(frozen=True, slots=True)
class HeavyHitterEstimate:
    """One reported group with its estimated distinct-population share.

    Attributes:
        key: The group key (``key_fn(element)``).
        share: Estimated fraction of the distinct population in the group.
        low: ~95 % lower frequency bound on the share.
        high: ~95 % upper frequency bound on the share.
        matched: Sample members in the group.
        sample_size: Sample size used.
        count: Estimated number of distinct elements in the group
            (``share * d̂``), or None when no distinct-count estimate was
            supplied.
        count_low: Lower bound of the count estimate (None without d̂).
        count_high: Upper bound of the count estimate (None without d̂).
    """

    key: Any
    share: float
    low: float
    high: float
    matched: int
    sample_size: int
    count: Optional[float] = None
    count_low: Optional[float] = None
    count_high: Optional[float] = None


def _share_bounds(matched: int, n: int) -> tuple[float, float]:
    """Normal-approximation binomial bounds with rule-of-three edges."""
    p = matched / n
    std_error = math.sqrt(max(p * (1.0 - p) / n, 0.0))
    low = max(0.0, p - 1.96 * std_error)
    high = min(1.0, p + 1.96 * std_error)
    if matched == 0:
        high = min(1.0, 3.0 / n)
    elif matched == n:
        low = max(0.0, 1.0 - 3.0 / n)
    return low, high


def estimate_heavy_hitters(
    sample: Sequence[Any],
    key_fn: Callable[[Any], Any],
    threshold: float = 0.0,
    distinct_count: Optional[DistinctCountEstimate] = None,
) -> list[HeavyHitterEstimate]:
    """Groups whose estimated share of the distinct population ≥ threshold.

    Args:
        sample: A uniform distinct sample (e.g. ``sampler.sample()``; for
            ``sharded:*`` samplers this is the provably-global merged
            bottom-s sample).
        key_fn: Maps an element to its group key.
        threshold: Minimum estimated share for a group to be reported
            (0.0 reports every group present in the sample).
        distinct_count: Optional KMV estimate over the same sketch; when
            given, each hitter also carries absolute distinct-count
            bounds (error propagation assumes independent factors).

    Returns:
        Reported groups, descending by estimated share (ties broken by
        key representation for determinism).

    Raises:
        EstimationError: If the sample is empty or the threshold is
            outside ``[0, 1)``.
    """
    n = len(sample)
    if n == 0:
        raise EstimationError("cannot find heavy hitters in an empty sample")
    if not 0.0 <= threshold < 1.0:
        raise EstimationError(
            f"threshold must be in [0, 1), got {threshold}"
        )
    counts: dict[Any, int] = {}
    for element in sample:
        key = key_fn(element)
        counts[key] = counts.get(key, 0) + 1
    hitters = []
    for key, matched in counts.items():
        share = matched / n
        if share < threshold:
            continue
        low, high = _share_bounds(matched, n)
        count = count_low = count_high = None
        if distinct_count is not None:
            d_hat = distinct_count.estimate
            count = share * d_hat
            # Var(p̂·d̂) ≈ d̂²·Var(p̂) + p̂²·Var(d̂) for independent factors.
            share_se = math.sqrt(max(share * (1.0 - share) / n, 0.0))
            var = (d_hat * share_se) ** 2
            var += (share * distinct_count.std_error) ** 2
            count_se = math.sqrt(var)
            count_low = max(0.0, count - 1.96 * count_se)
            count_high = count + 1.96 * count_se
        hitters.append(
            HeavyHitterEstimate(
                key=key,
                share=share,
                low=low,
                high=high,
                matched=matched,
                sample_size=n,
                count=count,
                count_low=count_low,
                count_high=count_high,
            )
        )
    hitters.sort(key=lambda hitter: (-hitter.share, repr(hitter.key)))
    return hitters
