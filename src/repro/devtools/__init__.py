"""Developer tooling: static analysis that guards the project's invariants.

The distributed runtime grown in PRs 3-5 rests on invariants no general
linter knows about: columnar fast paths must never fall back to tuple
materialization, anything crossing the ProcessExecutor boundary must be
pickle-clean, every concrete sampler must stay reachable from the variant
registry and covered by the conformance suite, snapshots must stay
symmetric, and nothing in the hot layers may smuggle in nondeterminism.
:mod:`repro.devtools.lint` encodes those invariants as AST rules
(RPR001-RPR006) behind the ``repro lint`` CLI subcommand and the
``lint-static`` CI job.
"""

from .lint import LintReport, Violation, all_rules, run_lint

__all__ = ["LintReport", "Violation", "all_rules", "run_lint"]
