"""RPR008 — no Python-level sorting inside query/merge fast paths.

The query-time bottom-s merge (PR 9) is vectorized: every group exposes
its sample as a float64 hash column (``sample_columns``/``columns``)
and :meth:`repro.runtime.sharded.ShardedSampler._merge_groups` selects
the global bottom-``s`` with ``np.concatenate`` + ``np.argpartition`` +
a stable ``np.argsort`` tie-break.  The slow regression is one line
away: ``sorted(pairs, key=...)`` or ``pairs.sort(...)`` over the
per-pair tuples quietly reintroduces the Python comparison loop the
merge was rebuilt to avoid — and, worse, a *non-stable-keyed* sort can
break the pinned (hash, group, index) tie order.

This rule flags ``sorted(...)`` calls and ``.sort(...)`` method calls
inside the functions that make up the query fast path (``sample``,
``sample_columns``, ``sample_pairs``, ``columns``, ``_merge_groups``).
Sorting elsewhere — construction, reporting, test scaffolding — is
fine; the invariant protects the per-query path only.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .engine import ModuleContext, Rule, Violation, register_rule

__all__ = ["QueryPathPythonSortRule", "QUERY_FAST_PATH_FUNCTIONS"]

#: Function names that constitute the query/merge hot path.
QUERY_FAST_PATH_FUNCTIONS = frozenset(
    {
        "sample",
        "sample_columns",
        "sample_pairs",
        "columns",
        "_merge_groups",
    }
)


@register_rule
class QueryPathPythonSortRule(Rule):
    code = "RPR008"
    name = "no-python-sort-in-query-path"
    summary = (
        "query/merge fast paths (sample & co) must not sort in Python "
        "(sorted()/.sort()); select over the hash column with "
        "np.argpartition/np.argsort instead"
    )

    def check_module(self, module: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name in QUERY_FAST_PATH_FUNCTIONS
            ):
                yield from self._check_function(module, node)

    def _check_function(
        self, module: ModuleContext, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Violation]:
        where = f"query fast path {func.name!r}"
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            callee = node.func
            if isinstance(callee, ast.Name) and callee.id == "sorted":
                yield self.violation(
                    module,
                    node,
                    f"{where} sorts pairs in Python via sorted(); merge "
                    "over the float64 hash column with np.argpartition "
                    "+ stable np.argsort instead",
                )
            elif isinstance(callee, ast.Attribute) and callee.attr == "sort":
                # np module-level sort (np.sort(...)) is the vectorized
                # kernel this rule steers toward -- only flag the
                # list.sort() method shape, which np arrays don't have
                # as an attribute spelled through the np module object.
                if (
                    isinstance(callee.value, ast.Name)
                    and callee.value.id in ("np", "numpy")
                ):
                    continue
                yield self.violation(
                    module,
                    node,
                    f"{where} sorts in Python via .sort(); keep the "
                    "merge columnar (np.argpartition + stable "
                    "np.argsort over the hash column)",
                )
