"""RPR006 — executor shared-state safety: workers never mutate the parent.

The ProcessExecutor contract is strict: a worker function receives a
*plan* (config + state + tasks), rebuilds the shard group locally,
replays the plan, and **returns** new state.  The parent alone commits
results back into the facade.  Under ``multiprocessing`` a worker that
writes through a captured facade/topology reference only mutates its own
fork — the bug is silent until someone swaps in a thread pool or shared
memory, at which point it becomes a data race.  Either way, worker-side
mutation of parent-owned objects is wrong by design.

The rule finds worker entry points statically: any function passed as
the callable to a pool-dispatch call (``pool.map``, ``imap``,
``apply_async``, ``starmap``, ``submit``, ...).  Inside each worker
function it flags:

* attribute or subscript **stores** whose base object is a parameter
  (state shipped from the parent) or a module-level global;
* ``global``/``nonlocal`` declarations (shared-state mutation by
  construction).

Locals the worker builds itself (the rebuilt group, its state dict) are
free to mutate — that is the intended pattern.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .engine import ModuleContext, Rule, Violation, register_rule

__all__ = ["ExecutorSharedStateRule"]

#: Pool/executor methods whose first argument is a worker callable.
_DISPATCH_METHODS = frozenset(
    {
        "map",
        "map_async",
        "imap",
        "imap_unordered",
        "starmap",
        "starmap_async",
        "apply",
        "apply_async",
        "submit",
    }
)


def _worker_names(tree: ast.Module) -> frozenset[str]:
    """Names of functions dispatched to a pool anywhere in the module."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _DISPATCH_METHODS
            and node.args
            and isinstance(node.args[0], ast.Name)
        ):
            names.add(node.args[0].id)
    return frozenset(names)


def _module_globals(tree: ast.Module) -> frozenset[str]:
    """Names bound at module level (assignments, defs, imports)."""
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            names.add(node.name)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[0])
    return frozenset(names)


def _store_root(node: ast.AST) -> ast.AST:
    """The base object of an attribute/subscript chain."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node


@register_rule
class ExecutorSharedStateRule(Rule):
    code = "RPR006"
    name = "executor-shared-state"
    summary = (
        "pool worker functions must not mutate parent-owned state "
        "(facade/topology attributes, globals); return results instead"
    )

    def check_module(self, module: ModuleContext) -> Iterator[Violation]:
        workers = _worker_names(module.tree)
        if not workers:
            return
        module_level = _module_globals(module.tree)
        for node in module.tree.body:
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name in workers
            ):
                yield from self._check_worker(module, node, module_level)

    def _check_worker(
        self,
        module: ModuleContext,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        module_level: frozenset[str],
    ) -> Iterator[Violation]:
        args = func.args
        params = {
            a.arg
            for a in (
                *args.posonlyargs,
                *args.args,
                *args.kwonlyargs,
                *((args.vararg,) if args.vararg else ()),
                *((args.kwarg,) if args.kwarg else ()),
            )
        }
        for node in ast.walk(func):
            if isinstance(node, (ast.Global, ast.Nonlocal)):
                kind = "global" if isinstance(node, ast.Global) else "nonlocal"
                yield self.violation(
                    module,
                    node,
                    f"worker function {func.name!r} declares {kind} "
                    f"{', '.join(node.names)}; workers must return "
                    "results, not mutate shared state",
                )
                continue
            targets: list[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = list(node.targets)
            for target in targets:
                if not isinstance(target, (ast.Attribute, ast.Subscript)):
                    continue
                root = _store_root(target)
                if not isinstance(root, ast.Name):
                    continue
                if root.id in params:
                    yield self.violation(
                        module,
                        target,
                        f"worker function {func.name!r} writes through "
                        f"parameter {root.id!r} (parent-owned state); "
                        "rebuild locally and return the new state instead",
                    )
                elif root.id in module_level:
                    yield self.violation(
                        module,
                        target,
                        f"worker function {func.name!r} mutates module "
                        f"global {root.id!r}; under multiprocessing this "
                        "only changes the worker's fork — return results "
                        "to the parent instead",
                    )
