"""RPR005 — determinism: no wall-clock or unseeded randomness in hot layers.

Every differential guarantee in this repo — sharded == oracle,
process == serial, restored == original — holds because a sampler's
behavior is a pure function of (config, seed, stream).  One
``time.time()`` feeding a decision, one unseeded RNG, or one iteration
over a ``set`` (whose order hashes per process) and the property suite
starts flaking in ways that are nearly impossible to bisect.

Flagged constructs:

* wall-clock reads: ``time.time``/``time.time_ns`` and
  ``datetime.now``/``utcnow``/``today`` calls
  (``time.perf_counter`` is fine — the runtime uses it for *measuring*,
  never for *deciding*);
* the global ``random`` module's sampling functions (``random.random``,
  ``choice``, ``shuffle``, ...; a seeded ``random.Random(seed)``
  instance is fine);
* NumPy's legacy global RNG (``np.random.seed``/``rand``/...;
  ``default_rng(seed)`` and ``Generator`` are fine) and
  ``default_rng()`` called *without* a seed;
* order-sensitive iteration over sets: ``for x in set(...)``,
  ``list(set(...))``, ``tuple(set(...))``, ``enumerate(set(...))``
  (wrap in ``sorted(...)`` to restore a canonical order).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from .engine import ModuleContext, Rule, Violation, register_rule

__all__ = ["DeterminismRule"]

_CLOCK_CALLS = frozenset({"time", "time_ns", "now", "utcnow", "today"})
_CLOCK_OWNERS = frozenset({"time", "datetime", "date"})

#: ``random.<fn>`` module-level functions that read global RNG state.
_GLOBAL_RANDOM_FNS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "uniform",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "betavariate",
        "gauss",
        "normalvariate",
        "seed",
        "getrandbits",
    }
)

#: Legacy ``np.random.<fn>`` global-state functions.
_NUMPY_GLOBAL_FNS = frozenset(
    {
        "seed",
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "choice",
        "shuffle",
        "permutation",
        "uniform",
        "normal",
    }
)

#: Callables whose output order mirrors their iterable argument's order.
_ORDER_SENSITIVE_WRAPPERS = frozenset({"list", "tuple", "enumerate", "iter"})


def _attr_chain(node: ast.AST) -> list[str]:
    """``a.b.c`` → ["a", "b", "c"] (empty when not a plain name chain)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return []


def _is_set_expression(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in {"set", "frozenset"}
    )


@register_rule
class DeterminismRule(Rule):
    code = "RPR005"
    name = "determinism"
    summary = (
        "no wall-clock reads, unseeded/global RNGs, or set-order "
        "iteration on paths that decide sampler behavior"
    )

    def check_module(self, module: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                message = self._check_call(node)
                if message is not None:
                    yield self.violation(module, node, message)
            elif isinstance(node, (ast.For, ast.comprehension)):
                iterable = node.iter
                if _is_set_expression(iterable):
                    anchor = node if isinstance(node, ast.For) else iterable
                    yield self.violation(
                        module,
                        anchor,
                        "iteration over a set is hash-order dependent and "
                        "varies across processes; sort it first "
                        "(sorted(...)) to keep sample order deterministic",
                    )

    def _check_call(self, node: ast.Call) -> Optional[str]:
        chain = _attr_chain(node.func)
        if not chain:
            return None
        last = chain[-1]
        owner = chain[-2] if len(chain) >= 2 else None
        if last in _CLOCK_CALLS and owner in _CLOCK_OWNERS:
            return (
                f"wall-clock read {'.'.join(chain)}() is nondeterministic; "
                "derive decisions from slots/config (perf_counter is fine "
                "for measuring, never for deciding)"
            )
        # The numpy check must precede the generic one: np.random.shuffle
        # would otherwise match the stdlib-`random` branch (owner is the
        # same "random" component) and report the wrong remedy.
        if (
            owner == "random"
            and len(chain) >= 3
            and chain[-3] in {"np", "numpy"}
            and last in _NUMPY_GLOBAL_FNS
        ):
            return (
                f"legacy numpy global RNG {'.'.join(chain)}() depends on "
                "process state; use np.random.default_rng(seed)"
            )
        if owner == "random" and last in _GLOBAL_RANDOM_FNS:
            return (
                f"global-RNG call {'.'.join(chain)}() depends on process "
                "state; use a seeded random.Random or numpy Generator"
            )
        if last == "default_rng" and not node.args and not node.keywords:
            return (
                "default_rng() without a seed draws OS entropy; pass the "
                "config's seed so runs are reproducible"
            )
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in _ORDER_SENSITIVE_WRAPPERS
            and node.args
            and _is_set_expression(node.args[0])
        ):
            return (
                f"{node.func.id}(set(...)) freezes hash order into a "
                "sequence; sort the set first to keep order deterministic"
            )
        return None
