"""``repro lint``: the project-invariant AST rule engine.

Importing this package registers the built-in rule set:

========  ==========================  =========================================
code      name                        guards
========  ==========================  =========================================
RPR001    no-tuple-materialization    columnar fast paths stay columnar
RPR002    pickle-boundary-safety      executor-crossing state pickles cleanly
RPR003    registry-completeness       every facade registered + conformance-covered
RPR004    snapshot-symmetry           state keys written == keys consumed
RPR005    determinism                 no wall-clock / unseeded RNG / set order
RPR006    executor-shared-state       workers return results, never mutate parent
RPR007    shm-unlink-pairing          SharedMemory creation paired with error-path unlink
RPR008    no-python-sort-in-query-path  query/merge fast paths stay vectorized
========  ==========================  =========================================

Entry points: :func:`run_lint` (library), ``repro lint`` (CLI), and the
``lint-static`` CI job.  See :mod:`repro.devtools.lint.engine` for the
suppression syntax and how to add a rule.
"""

from .engine import (
    JSON_SCHEMA_VERSION,
    LintReport,
    ModuleContext,
    ProjectContext,
    Rule,
    Violation,
    all_rules,
    get_rules,
    register_rule,
    run_lint,
)

# Importing the rule modules registers the built-in rule set.
from . import rules_columnar  # noqa: F401  (registration side effect)
from . import rules_determinism  # noqa: F401
from . import rules_executor  # noqa: F401
from . import rules_pickle  # noqa: F401
from . import rules_query  # noqa: F401
from . import rules_registry  # noqa: F401
from . import rules_shm  # noqa: F401
from . import rules_snapshot  # noqa: F401

__all__ = [
    "JSON_SCHEMA_VERSION",
    "LintReport",
    "ModuleContext",
    "ProjectContext",
    "Rule",
    "Violation",
    "all_rules",
    "get_rules",
    "register_rule",
    "run_lint",
]
