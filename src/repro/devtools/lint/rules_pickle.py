"""RPR002 — pickle safety for state that crosses the executor boundary.

The :class:`~repro.runtime.executor.ProcessExecutor` ships shard-group
plans to worker processes by pickle, and snapshot/deepcopy reach the
same ``__reduce__``/``__getstate__`` machinery.  Two classes of bug get
in by default and only explode at runtime, in a worker:

* **Unpicklable resources.**  A class that binds a lock, a process
  pool, an open file handle, a socket, or a shared-memory handle
  (``SharedMemory`` maps a process-local ``mmap``; a pickled copy in
  another process would dangle) to an attribute will raise
  ``TypeError: cannot pickle`` — or silently misbehave — the first time
  an instance is dragged across the boundary, unless it opts out of
  shipping the resource via
  ``__reduce__``/``__getstate__``/``__reduce_ex__``.
* **Shipped derived caches.**  Memoized columns and row-view lists
  (``_hash_columns``, ``*_cache``, ``*_list``, ``*_memo``) are cheap to
  recompute and expensive to serialize; a ``__reduce__``/``__getstate__``
  that references them ships redundant bytes per batch and undoes the
  workers-rehash-in-parallel design
  (:meth:`repro.core.events.EventBatch.__reduce__` is the model: it
  returns only the defining columns).

The rule is static and conservative: it flags attribute assignments
whose value is a call to a known-unpicklable factory on classes with no
pickle-protocol override, and cache-patterned ``self`` attributes
referenced inside ``__reduce__``/``__getstate__`` bodies.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .engine import ModuleContext, Rule, Violation, register_rule

__all__ = ["PickleSafetyRule"]

#: Callable names (last attribute/function component) whose results do
#: not survive pickling.
_UNPICKLABLE_FACTORIES = frozenset(
    {
        "Lock",
        "RLock",
        "Condition",
        "Event",
        "Semaphore",
        "BoundedSemaphore",
        "Barrier",
        "Pool",
        "ThreadPool",
        "ProcessPoolExecutor",
        "ThreadPoolExecutor",
        "Popen",
        "socket",
        "open",
        "SharedMemory",
    }
)

#: Methods that take custody of what an instance ships when pickled.
_PICKLE_OVERRIDES = frozenset({"__reduce__", "__reduce_ex__", "__getstate__"})

#: Attribute-name shapes that mark recomputable derived data.
_CACHE_SUFFIXES = ("_cache", "_caches", "_memo", "_list")
_CACHE_NAMES = frozenset({"_hash_columns"})


def _callee_name(node: ast.Call) -> str | None:
    """Last name component of a call target (``a.b.Pool(...)`` → Pool)."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _is_cache_attr(name: str) -> bool:
    return name in _CACHE_NAMES or (
        name.startswith("_") and name.endswith(_CACHE_SUFFIXES)
    )


@register_rule
class PickleSafetyRule(Rule):
    code = "RPR002"
    name = "pickle-boundary-safety"
    summary = (
        "classes holding locks/pools/handles need a pickle-protocol "
        "override, and __reduce__/__getstate__ must not ship derived caches"
    )

    def check_module(self, module: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)

    def _check_class(
        self, module: ModuleContext, cls: ast.ClassDef
    ) -> Iterator[Violation]:
        has_override = any(
            isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            and item.name in _PICKLE_OVERRIDES
            for item in cls.body
        )
        for node in ast.walk(cls):
            if not isinstance(node, ast.Assign) or not isinstance(
                node.value, ast.Call
            ):
                continue
            factory = _callee_name(node.value)
            if factory not in _UNPICKLABLE_FACTORIES:
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and not has_override
                ):
                    yield self.violation(
                        module,
                        node,
                        f"{cls.name}.{target.attr} holds an unpicklable "
                        f"{factory}() result but {cls.name} defines no "
                        "__reduce__/__getstate__ to drop it; instances "
                        "will break at the ProcessExecutor pickle "
                        "boundary (and under deepcopy)",
                    )
        for item in cls.body:
            if (
                isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                and item.name in _PICKLE_OVERRIDES
            ):
                yield from self._check_override(module, cls, item)

    def _check_override(
        self,
        module: ModuleContext,
        cls: ast.ClassDef,
        method: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> Iterator[Violation]:
        for node in ast.walk(method):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and _is_cache_attr(node.attr)
            ):
                yield self.violation(
                    module,
                    node,
                    f"{cls.name}.{method.name} ships derived cache "
                    f"attribute {node.attr!r} across the pickle "
                    "boundary; drop it and let the receiving side "
                    "recompute (cf. EventBatch.__reduce__)",
                )
