"""The ``repro lint`` rule engine: AST rules over the project tree.

General-purpose linters check Python; this engine checks *this project*.
A :class:`Rule` inspects parsed modules (or the whole project at once)
and reports :class:`Violation` records tied to a stable rule code
(``RPR001``...).  The engine owns everything rule authors should not
re-implement:

* **Discovery and parsing** — :func:`run_lint` walks the given paths,
  parses every ``.py`` file once, and hands rules a
  :class:`ModuleContext` (path, source, AST) or the aggregate
  :class:`ProjectContext` (cross-file rules like registry completeness).
* **Suppressions** — a ``# repro-lint: disable=RPR001`` comment on (or
  directly above) the offending line silences that rule there;
  ``# repro-lint: disable-file=RPR001`` silences it for the whole file.
  ``disable=all`` works in both forms.  Suppressions are parsed from the
  raw source, so they work on lines the AST does not attribute exactly.
* **Output** — :meth:`LintReport.render` for humans,
  :meth:`LintReport.to_json` (schema-versioned) for CI artifacts.
* **Severity and exit code** — every rule declares ``error`` or
  ``warning``; only errors make :attr:`LintReport.ok` false (the CLI
  exit code).

Adding a rule is: subclass :class:`Rule` in a ``rules_*`` module,
implement :meth:`Rule.check_module` (per-file) and/or
:meth:`Rule.check_project` (cross-file), decorate with
:func:`register_rule`, and import the module from
:mod:`repro.devtools.lint` so registration runs.  Fixture-based tests in
``tests/test_devtools_lint.py`` must prove the rule fires.
"""

from __future__ import annotations

import ast
import json
import re
from abc import ABC, abstractmethod
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence

from ...errors import ConfigurationError

__all__ = [
    "JSON_SCHEMA_VERSION",
    "SEVERITIES",
    "Violation",
    "ModuleContext",
    "ProjectContext",
    "Rule",
    "LintReport",
    "register_rule",
    "all_rules",
    "get_rules",
    "run_lint",
]

#: Version stamp written into every JSON report.
JSON_SCHEMA_VERSION = 1

#: Allowed rule severities; only ``"error"`` violations fail the build.
SEVERITIES = ("error", "warning")

#: ``# repro-lint: disable=RPR001,RPR002`` / ``disable-file=RPR003``.
_SUPPRESSION_RE = re.compile(
    r"#\s*repro-lint:\s*disable(?P<scope>-file)?\s*=\s*"
    r"(?P<codes>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)


@dataclass(frozen=True)
class Violation:
    """One rule violation at one source location.

    Attributes:
        rule: Stable rule code (``"RPR001"``).
        severity: ``"error"`` or ``"warning"``.
        path: Path of the offending file, as given to :func:`run_lint`.
        line: 1-based line number.
        col: 0-based column offset.
        message: Human-readable description of the violation.
    """

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str

    def to_dict(self) -> dict[str, object]:
        """JSON-ready record (the ``violations[]`` schema)."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        """One-line human form, ``path:line:col: CODE message``."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} [{self.severity}] {self.message}"
        )


class ModuleContext:
    """One parsed source file, as handed to :meth:`Rule.check_module`.

    Attributes:
        path: Filesystem path of the module.
        display_path: The path string used in violation records.
        source: Raw source text.
        tree: The parsed :class:`ast.Module`.
    """

    def __init__(self, path: Path, source: str, tree: ast.Module) -> None:
        self.path = path
        self.display_path = str(path)
        self.source = source
        self.tree = tree
        self._line_disables: dict[int, set[str]] = {}
        self._file_disables: set[str] = set()
        for lineno, line in enumerate(source.splitlines(), start=1):
            match = _SUPPRESSION_RE.search(line)
            if match is None:
                continue
            codes = {
                code.strip().upper()
                for code in match.group("codes").split(",")
            }
            if match.group("scope"):
                self._file_disables |= codes
            else:
                self._line_disables.setdefault(lineno, set()).update(codes)

    def is_suppressed(self, code: str, line: int) -> bool:
        """True when ``code`` is disabled at ``line``.

        A same-line comment or one on the directly preceding line
        suppresses; ``disable-file`` suppresses everywhere.  ``ALL``
        is the wildcard.
        """
        if self._file_disables & {code, "ALL"}:
            return True
        for candidate in (line, line - 1):
            if self._line_disables.get(candidate, set()) & {code, "ALL"}:
                return True
        return False


class ProjectContext:
    """The whole lint run, as handed to :meth:`Rule.check_project`.

    Attributes:
        modules: Every parsed module in the scanned paths.
        root: The project root (directory holding ``pyproject.toml``),
            or None when no root was found above the scanned paths.
    """

    #: Project-relative path of the conformance-test registry RPR003
    #: checks sampler classes against.
    CONFORMANCE_PATH = ("tests", "test_protocol_conformance.py")

    def __init__(
        self, modules: Sequence[ModuleContext], root: Optional[Path] = None
    ) -> None:
        self.modules = list(modules)
        self.root = root

    def conformance_module(self) -> Optional[ModuleContext]:
        """The parsed conformance-test module, or None if unavailable."""
        if self.root is None:
            return None
        path = self.root.joinpath(*self.CONFORMANCE_PATH)
        if not path.is_file():
            return None
        return _parse_module(path)


class Rule(ABC):
    """One project-invariant check.

    Class attributes:
        code: Stable identifier (``"RPR001"``); uppercase, unique.
        name: Short kebab-case name for listings.
        severity: ``"error"`` (build-failing) or ``"warning"``.
        summary: One-line description shown by ``repro lint --list-rules``.
    """

    code: str = ""
    name: str = ""
    severity: str = "error"
    summary: str = ""

    def check_module(self, module: ModuleContext) -> Iterable[Violation]:
        """Per-file check; yield violations found in ``module``."""
        return ()

    def check_project(self, project: ProjectContext) -> Iterable[Violation]:
        """Cross-file check; runs once per lint invocation."""
        return ()

    def violation(
        self, module: ModuleContext, node: ast.AST, message: str
    ) -> Violation:
        """Build a :class:`Violation` anchored at ``node``."""
        return Violation(
            rule=self.code,
            severity=self.severity,
            path=module.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


_RULES: dict[str, Rule] = {}


def register_rule(rule_cls: type) -> type:
    """Class decorator adding a :class:`Rule` subclass to the registry.

    Raises:
        ConfigurationError: For a missing/duplicate code or bad severity.
    """
    rule = rule_cls()
    if not rule.code:
        raise ConfigurationError(
            f"lint rule {rule_cls.__name__} declares no code"
        )
    if rule.code in _RULES:
        raise ConfigurationError(f"duplicate lint rule code {rule.code!r}")
    if rule.severity not in SEVERITIES:
        raise ConfigurationError(
            f"lint rule {rule.code} severity must be one of {SEVERITIES}, "
            f"got {rule.severity!r}"
        )
    _RULES[rule.code] = rule
    return rule_cls


def all_rules() -> tuple[Rule, ...]:
    """Every registered rule, sorted by code."""
    return tuple(_RULES[code] for code in sorted(_RULES))


def get_rules(codes: Optional[Sequence[str]] = None) -> tuple[Rule, ...]:
    """The rules selected by ``codes`` (None/empty selects all).

    Raises:
        ConfigurationError: For an unknown rule code.
    """
    if not codes:
        return all_rules()
    selected = []
    for code in codes:
        normalized = code.strip().upper()
        if normalized not in _RULES:
            raise ConfigurationError(
                f"unknown lint rule {code!r}; expected one of "
                f"{tuple(sorted(_RULES))}"
            )
        selected.append(_RULES[normalized])
    return tuple(dict.fromkeys(selected))


@dataclass(frozen=True)
class LintReport:
    """The outcome of one :func:`run_lint` invocation.

    Attributes:
        violations: Unsuppressed violations, sorted by (path, line, col,
            rule).
        files_checked: Number of files parsed and checked.
        rules: Codes of the rules that ran.
    """

    violations: tuple[Violation, ...]
    files_checked: int
    rules: tuple[str, ...]

    @property
    def ok(self) -> bool:
        """True when no *error*-severity violations remain."""
        return not any(v.severity == "error" for v in self.violations)

    def to_json(self) -> str:
        """The schema-versioned JSON report (CI artifact format)."""
        return json.dumps(
            {
                "schema_version": JSON_SCHEMA_VERSION,
                "ok": self.ok,
                "files_checked": self.files_checked,
                "rules": list(self.rules),
                "violations": [v.to_dict() for v in self.violations],
            },
            indent=2,
            sort_keys=True,
        )

    def render(self) -> str:
        """Human-readable report."""
        lines = [v.render() for v in self.violations]
        noun = "file" if self.files_checked == 1 else "files"
        lines.append(
            f"checked {self.files_checked} {noun} against "
            f"{len(self.rules)} rules: "
            + ("clean" if not self.violations else
               f"{len(self.violations)} violation(s)")
        )
        return "\n".join(lines)


def _parse_module(path: Path) -> Optional[ModuleContext]:
    """Parse one file into a :class:`ModuleContext` (None on IO failure)."""
    try:
        source = path.read_text(encoding="utf-8")
    except OSError:
        return None
    tree = ast.parse(source, filename=str(path))
    return ModuleContext(path, source, tree)


def _iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted, deduplicated .py file list."""
    seen = set()
    for path in paths:
        if path.is_dir():
            candidates = sorted(
                p
                for p in path.rglob("*.py")
                if "__pycache__" not in p.parts
                and not any(part.startswith(".") for part in p.parts)
            )
        else:
            candidates = [path]
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


def find_project_root(start: Path) -> Optional[Path]:
    """The nearest ancestor of ``start`` holding a ``pyproject.toml``."""
    current = start if start.is_dir() else start.parent
    for candidate in (current, *current.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return None


def run_lint(
    paths: Sequence[str | Path],
    rules: Optional[Sequence[str]] = None,
    root: Optional[str | Path] = None,
) -> LintReport:
    """Run the selected rules over ``paths`` and collect violations.

    Args:
        paths: Files and/or directories to scan (directories recurse).
        rules: Rule codes to run (None = all registered rules).
        root: Project root for cross-file rules; inferred from the first
            path (nearest ``pyproject.toml``) when omitted.

    Returns:
        A :class:`LintReport`; syntax errors surface as ``PARSE``
        violations rather than exceptions, so one broken file cannot
        hide the rest of the run.

    Raises:
        ConfigurationError: For an unknown rule code or no paths.
    """
    if not paths:
        raise ConfigurationError("repro lint needs at least one path")
    selected = get_rules(rules)
    resolved = [Path(p) for p in paths]
    for path in resolved:
        if not path.exists():
            raise ConfigurationError(f"no such file or directory: {path}")
    project_root = (
        Path(root) if root is not None else find_project_root(resolved[0])
    )

    modules: list[ModuleContext] = []
    violations: list[Violation] = []
    files_checked = 0
    for path in _iter_python_files(resolved):
        files_checked += 1
        try:
            module = _parse_module(path)
        except SyntaxError as exc:
            violations.append(
                Violation(
                    rule="PARSE",
                    severity="error",
                    path=str(path),
                    line=exc.lineno or 1,
                    col=exc.offset or 0,
                    message=f"syntax error: {exc.msg}",
                )
            )
            continue
        if module is not None:
            modules.append(module)

    project = ProjectContext(modules, project_root)
    for rule in selected:
        for module in modules:
            for violation in rule.check_module(module):
                if not module.is_suppressed(violation.rule, violation.line):
                    violations.append(violation)
        by_path = {module.display_path: module for module in modules}
        for violation in rule.check_project(project):
            module = by_path.get(violation.path)
            if module is None or not module.is_suppressed(
                violation.rule, violation.line
            ):
                violations.append(violation)

    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return LintReport(
        violations=tuple(violations),
        files_checked=files_checked,
        rules=tuple(rule.code for rule in selected),
    )
