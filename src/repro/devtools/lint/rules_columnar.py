"""RPR001 — no tuple materialization inside columnar fast paths.

The columnar ingest pipeline (PR 4) is only fast because an
:class:`~repro.core.events.EventBatch` stays columnar from the stream
emitter to the sampler core: hash columns are computed once and sliced,
never recomputed, and no layer re-expands the batch into per-event
tuples.  The slow ways to break that are all one innocuous call away:

* ``batch.to_events()`` — rebuilds the full tuple list (the generic
  fallback in :meth:`repro.core.protocol.Sampler.observe_columns` is the
  single sanctioned use and carries a suppression comment);
* ``zip(*batch)`` / ``zip(*run)`` — transposes rows back into tuples;
* ``EventBatch.from_events(...)`` — round-trips through tuples.

This rule flags those constructs inside the functions that make up the
columnar hot path (``observe_columns``, ``_deliver_columns``,
``_plan_columns``, ``ingest_columns``, ``assignments_for_batch``).
Per-item *delivery* loops over ``items_list()``/``sites_list()`` are
allowed: delivery into site objects is inherently per item — the
invariant protects the hashing/routing/splitting stages, which must stay
vectorized.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .engine import ModuleContext, Rule, Violation, register_rule

__all__ = ["ColumnarTupleMaterializationRule", "COLUMNAR_FAST_PATH_FUNCTIONS"]

#: Function names that constitute the columnar hot path.
COLUMNAR_FAST_PATH_FUNCTIONS = frozenset(
    {
        "observe_columns",
        "_deliver_columns",
        "_plan_columns",
        "ingest_columns",
        "assignments_for_batch",
    }
)


@register_rule
class ColumnarTupleMaterializationRule(Rule):
    code = "RPR001"
    name = "no-tuple-materialization"
    summary = (
        "columnar fast paths (observe_columns & co) must not rebuild "
        "tuple events (to_events/from_events calls, zip(*...) transposes)"
    )

    def check_module(self, module: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name in COLUMNAR_FAST_PATH_FUNCTIONS
            ):
                yield from self._check_function(module, node)

    def _check_function(
        self, module: ModuleContext, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Violation]:
        where = f"columnar fast path {func.name!r}"
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            callee = node.func
            if isinstance(callee, ast.Attribute):
                if callee.attr == "to_events":
                    yield self.violation(
                        module,
                        node,
                        f"{where} materializes tuple events via "
                        ".to_events(); keep the batch columnar "
                        "(slice/select the EventBatch instead)",
                    )
                elif callee.attr == "from_events":
                    yield self.violation(
                        module,
                        node,
                        f"{where} round-trips through tuple events via "
                        ".from_events(); build row subsets with "
                        "select()/with_sites() instead",
                    )
            elif (
                isinstance(callee, ast.Name)
                and callee.id == "zip"
                and any(isinstance(arg, ast.Starred) for arg in node.args)
            ):
                yield self.violation(
                    module,
                    node,
                    f"{where} transposes rows into tuples via zip(*...); "
                    "use the batch's columns directly",
                )
