"""RPR004 — snapshot symmetry: state keys written must equal keys read.

Snapshot-v2 persistence is the serialization substrate for everything:
checkpoint/restore, the ProcessExecutor worker protocol, and the
stateful property tests.  Its weak point is that the writer and the
reader of a state dict are two hand-maintained methods: add a field to
``_state`` and forget ``_load`` (or vice versa) and nothing fails until
a restored sampler silently diverges from its twin.

For every class that defines both halves of a persistence pair —
``_state``/``_load``, ``state_dict``/``load_state``, or
``__getstate__``/``__setstate__`` — this rule compares:

* **written keys**: every string key of a dict literal (or ``dict(...)``
  keyword) inside the writer, and
* **consumed keys**: every constant subscript ``state["key"]`` and
  ``.get("key")`` call inside the reader.

Keys written but never consumed, or consumed but never written, are
violations.  The comparison is set-based over the whole method body, so
nested sub-dicts pair up naturally as long as both sides spell the same
keys — which is exactly the invariant restores depend on.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .engine import ModuleContext, Rule, Violation, register_rule

__all__ = ["SnapshotSymmetryRule"]

#: (writer, reader) method pairs checked per class.
PERSISTENCE_PAIRS = (
    ("_state", "_load"),
    ("state_dict", "load_state"),
    ("__getstate__", "__setstate__"),
)


def _written_keys(method: ast.AST) -> dict[str, ast.AST]:
    """String keys of every dict literal / dict(...) call in ``method``."""
    keys: dict[str, ast.AST] = {}
    for node in ast.walk(method):
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    keys.setdefault(key.value, key)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "dict"
        ):
            for keyword in node.keywords:
                if keyword.arg is not None:
                    keys.setdefault(keyword.arg, node)
    return keys


def _consumed_keys(method: ast.AST) -> dict[str, ast.AST]:
    """Constant subscript / ``.get()`` keys read anywhere in ``method``."""
    keys: dict[str, ast.AST] = {}
    for node in ast.walk(method):
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.slice, ast.Constant)
            and isinstance(node.slice.value, str)
        ):
            keys.setdefault(node.slice.value, node)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in {"get", "pop"}
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            keys.setdefault(node.args[0].value, node)
    return keys


@register_rule
class SnapshotSymmetryRule(Rule):
    code = "RPR004"
    name = "snapshot-symmetry"
    summary = (
        "state_dict/_state keys written must match the keys "
        "load_state/_load consumes (and vice versa)"
    )

    def check_module(self, module: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)

    def _check_class(
        self, module: ModuleContext, cls: ast.ClassDef
    ) -> Iterator[Violation]:
        methods = {
            item.name: item
            for item in cls.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        for writer_name, reader_name in PERSISTENCE_PAIRS:
            writer = methods.get(writer_name)
            reader = methods.get(reader_name)
            if writer is None or reader is None:
                continue
            written = _written_keys(writer)
            consumed = _consumed_keys(reader)
            for key in sorted(set(written) - set(consumed)):
                yield self.violation(
                    module,
                    written[key],
                    f"{cls.name}.{writer_name} writes state key {key!r} "
                    f"that {reader_name} never consumes; a restored "
                    "instance silently drops it",
                )
            for key in sorted(set(consumed) - set(written)):
                yield self.violation(
                    module,
                    consumed[key],
                    f"{cls.name}.{reader_name} consumes state key {key!r} "
                    f"that {writer_name} never writes; restore will miss "
                    "or mis-default it",
                )
