"""RPR007 — shared-memory segments must be unlinkable on error paths.

A ``SharedMemory(create=True)`` call allocates a named segment in
``/dev/shm`` that outlives the creating process: ``close()`` only drops
the local mapping, and nothing else ever reclaims the segment until
someone calls ``unlink()``.  A creation site whose error paths skip the
unlink therefore leaks kernel memory every time anything between
creation and cleanup raises — precisely the paths tests rarely cover.

The rule is static and function-scoped: every function that creates a
segment must also contain a ``try`` statement with an ``.unlink()``
call inside an ``except`` handler or ``finally`` block — the shapes
that run on error paths (the :func:`repro.runtime.executor._create_block`
pattern: create, then ``try``/``except BaseException`` → unlink +
re-raise).  An unconditional unlink later in the straight-line body
does not count, because the straight-line body is exactly what an
exception skips.  Module-level creation is always flagged: there is no
frame to attach cleanup to.

Functions that merely *attach* (``SharedMemory(name=...)`` without
``create=True``) do not own the segment and are not creation sites.
Transferring ownership out of a helper is fine as long as the helper
itself guards the window between creation and the hand-off — which is
the window this rule proves is covered.
"""

from __future__ import annotations

import ast
from typing import Iterator, Union

from .engine import ModuleContext, Rule, Violation, register_rule

__all__ = ["ShmUnlinkPairingRule"]

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _shallow_walk(node: ast.AST) -> Iterator[ast.AST]:
    """Walk ``node``'s subtree without descending into nested functions.

    A creation inside a nested function belongs to that function's own
    scope (it gets its own shallow walk); an ``unlink`` inside a nested
    function does not run on the enclosing frame's error paths.
    """
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if not isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            stack.extend(ast.iter_child_nodes(child))


def _is_creation(node: ast.AST) -> bool:
    """Whether ``node`` is a ``SharedMemory(...)`` call that creates.

    Conservative on non-literal ``create=`` values: anything that is not
    a literal falsy constant may create at runtime, so it counts.
    """
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else None
    )
    if name != "SharedMemory":
        return False
    for keyword in node.keywords:
        if keyword.arg == "create":
            if isinstance(keyword.value, ast.Constant):
                return bool(keyword.value.value)
            return True
    return False


def _calls_unlink(statements: list) -> bool:
    for statement in statements:
        for node in ast.walk(statement):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "unlink"
            ):
                return True
    return False


def _has_error_path_unlink(function: _FunctionNode) -> bool:
    """Whether the function unlinks inside an except handler or finally."""
    for node in _shallow_walk(function):
        if not isinstance(node, ast.Try):
            continue
        if node.finalbody and _calls_unlink(node.finalbody):
            return True
        if any(_calls_unlink(handler.body) for handler in node.handlers):
            return True
    return False


@register_rule
class ShmUnlinkPairingRule(Rule):
    code = "RPR007"
    name = "shm-unlink-pairing"
    summary = (
        "every SharedMemory(create=True) site needs an .unlink() on an "
        "error path (except handler or finally) in the same function"
    )

    def check_module(self, module: ModuleContext) -> Iterator[Violation]:
        functions = [
            node
            for node in ast.walk(module.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for function in functions:
            creations = [
                node
                for node in _shallow_walk(function)
                if _is_creation(node)
            ]
            if creations and not _has_error_path_unlink(function):
                for creation in creations:
                    yield self.violation(
                        module,
                        creation,
                        f"{function.name} creates a SharedMemory segment "
                        "but has no .unlink() in an except handler or "
                        "finally block; any exception before cleanup "
                        "leaks the /dev/shm segment until reboot",
                    )
        for node in _shallow_walk(module.tree):
            if _is_creation(node):
                yield self.violation(
                    module,
                    node,
                    "module-level SharedMemory creation has no frame to "
                    "attach error-path cleanup to; create segments inside "
                    "a function that unlinks in except/finally",
                )
