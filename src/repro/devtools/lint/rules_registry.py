"""RPR003 — registry completeness for concrete Sampler facades.

Everything downstream of the front door — CLI, snapshots, the perf
suite, the sharded wrappers — discovers samplers through the variant
registry, and the conformance suite (``tests/test_protocol_conformance.py``)
is the contract that keeps every facade honest.  A new concrete
``Sampler`` subclass that is *not* wired into both is a silent gap: it
imports fine, its own unit tests pass, and it quietly misses snapshot
round-trips, batch-equivalence pinning, and the CLI.

This project rule rebuilds the class hierarchy statically:

* every class transitively subclassing ``Sampler`` is collected;
* helper bases are exempt by convention (a leading underscore or a
  ``Base`` suffix) along with classes that declare ``@abstractmethod``
  members;
* each remaining *concrete* facade must be **named** (a) somewhere in a
  module that calls ``register_variant``/``register_sharded_variant``
  — i.e. it is reachable from the registry — and (b) somewhere in the
  conformance-test module, so the shared lifecycle suite covers it.

The conformance half is skipped when the project root (or the test
file) cannot be found — e.g. when linting a lone file outside the
repository.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator, Optional

from .engine import ModuleContext, ProjectContext, Rule, Violation, register_rule

__all__ = ["RegistryCompletenessRule"]

#: The protocol root every facade descends from.
_ROOT_CLASS = "Sampler"

#: Calls that mark a module as part of the registry wiring.
_REGISTER_CALLS = frozenset({"register_variant", "register_sharded_variant"})


@dataclass(frozen=True)
class _ClassInfo:
    name: str
    bases: tuple[str, ...]
    is_abstract: bool
    module: ModuleContext
    node: ast.ClassDef


def _base_names(cls: ast.ClassDef) -> tuple[str, ...]:
    names = []
    for base in cls.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return tuple(names)


def _declares_abstract_members(cls: ast.ClassDef) -> bool:
    for item in cls.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for decorator in item.decorator_list:
                last = (
                    decorator.attr
                    if isinstance(decorator, ast.Attribute)
                    else decorator.id
                    if isinstance(decorator, ast.Name)
                    else None
                )
                if last in {"abstractmethod", "abstractproperty"}:
                    return True
    return False


def _identifiers(tree: ast.Module) -> frozenset[str]:
    """Every name that appears in a module: loads, attributes, imports."""
    found: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            found.add(node.id)
        elif isinstance(node, ast.Attribute):
            found.add(node.attr)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                found.add(alias.asname or alias.name.split(".")[-1])
    return frozenset(found)


def _calls_registry(tree: ast.Module) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            func = node.func
            name = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr
                if isinstance(func, ast.Attribute)
                else None
            )
            if name in _REGISTER_CALLS:
                return True
    return False


@register_rule
class RegistryCompletenessRule(Rule):
    code = "RPR003"
    name = "registry-completeness"
    summary = (
        "every concrete Sampler subclass must be reachable from the "
        "variant registry and named in the conformance-test suite"
    )

    def check_project(self, project: ProjectContext) -> Iterator[Violation]:
        classes: list[_ClassInfo] = []
        registry_names: set[str] = set()
        for module in project.modules:
            if _calls_registry(module.tree):
                registry_names |= _identifiers(module.tree)
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    classes.append(
                        _ClassInfo(
                            name=node.name,
                            bases=_base_names(node),
                            is_abstract=_declares_abstract_members(node),
                            module=module,
                            node=node,
                        )
                    )

        sampler_family = {_ROOT_CLASS}
        changed = True
        while changed:
            changed = False
            for info in classes:
                if info.name not in sampler_family and any(
                    base in sampler_family for base in info.bases
                ):
                    sampler_family.add(info.name)
                    changed = True

        conformance = self._conformance_names(project)
        for info in classes:
            if info.name == _ROOT_CLASS or info.name not in sampler_family:
                continue
            if (
                info.name.startswith("_")
                or info.name.endswith("Base")
                or info.is_abstract
            ):
                continue  # helper/abstract bases are not facades
            if registry_names and info.name not in registry_names:
                yield self.violation(
                    info.module,
                    info.node,
                    f"concrete Sampler subclass {info.name} is not "
                    "referenced by any module that registers variants; "
                    "wire it into the registry (register_variant) or "
                    "mark it as a base/helper",
                )
            if conformance is not None and info.name not in conformance:
                yield self.violation(
                    info.module,
                    info.node,
                    f"concrete Sampler subclass {info.name} is not named "
                    "in tests/test_protocol_conformance.py; add it to the "
                    "conformance registry so the shared lifecycle suite "
                    "covers it",
                )

    def _conformance_names(
        self, project: ProjectContext
    ) -> Optional[frozenset[str]]:
        module = project.conformance_module()
        if module is None:
            return None
        return _identifiers(module.tree)
