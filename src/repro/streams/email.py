"""Enron-like e-mail correspondent stream.

The paper forms elements by concatenating sender and receiver e-mail
addresses of the Enron corpus.  As with the IP stream, we map calibrated
synthetic ids to deterministic ``"sender->recipient"`` strings for the
examples, while experiments run on raw ids.
"""

from __future__ import annotations

import numpy as np

from ..hashing.murmur import fmix64
from .datasets import DatasetSpec, get_dataset

__all__ = ["format_email_pair", "enron_like", "email_stream"]

_DOMAINS = ("enron.com", "mail.com", "corp.net", "example.org")


def format_email_pair(pair_id: int) -> str:
    """Deterministically render a pair id as ``"userA@dom->userB@dom"``."""
    mixed = fmix64(pair_id)
    a = (mixed >> 40) & 0xFFFFFF
    b = (mixed >> 16) & 0xFFFFFF
    dom_a = _DOMAINS[(mixed >> 8) & 0x3]
    dom_b = _DOMAINS[mixed & 0x3]
    return f"u{a:06x}@{dom_a}->u{b:06x}@{dom_b}"


def enron_like(scale: str = "small") -> DatasetSpec:
    """The Enron-calibrated dataset spec at ``scale``."""
    return get_dataset("enron", scale)


def email_stream(
    scale: str, rng: np.random.Generator, as_strings: bool = False
) -> list:
    """Generate an Enron-like stream.

    Args:
        scale: Dataset scale (see :data:`repro.streams.datasets.SCALES`).
        rng: Source of randomness.
        as_strings: If True, return formatted address-pair strings.

    Returns:
        A Python list of elements (ints or strings).
    """
    ids = enron_like(scale).generate(rng)
    if not as_strings:
        return ids.tolist()
    unique = {int(i): format_email_pair(int(i)) for i in np.unique(ids)}
    return [unique[int(i)] for i in ids]
