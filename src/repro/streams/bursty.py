"""Bursty streams: temporal locality like real packet traces.

The calibrated generator shuffles occurrences uniformly, but real traces
(the OC48 packets of a flow, the e-mails of a thread) arrive in *bursts*.
:func:`bursty_stream` keeps the calibrated guarantees — exact total and
distinct counts, Zipf repetition profile — while laying occurrences out
as geometric-length runs of the same element in a random burst order.

Why it matters for this package: for ``s = 1`` the message cost of the
infinite-window protocol depends only on the order of *first occurrences*
(repeats of the minimum never re-report), so burstiness is free; for
``s > 1`` adjacent repeats of an in-sample element hammer the
repeat-report path (finding F1) *but* are exactly what the
:class:`~repro.core.caching.CachingSite` LRU eats for breakfast — a
cache of size 1 suffices for back-to-back repeats.  The tests make both
effects measurable.
"""

from __future__ import annotations

import numpy as np

from ..core.events import EventBatch
from ..errors import DatasetError
from .synthetic import dealt_batch, zipf_weights

__all__ = ["bursty_stream", "bursty_batch", "mean_run_length"]


def bursty_stream(
    n_elements: int,
    n_distinct: int,
    skew: float,
    burst_mean: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Generate a bursty stream with exactly ``n_distinct`` distinct ids.

    Occurrence counts per id follow the same construction as
    :func:`~repro.streams.synthetic.calibrated_stream`; each id's
    occurrences are then split into bursts with geometric mean
    ``burst_mean`` and the bursts are emitted in uniformly random order.

    Args:
        n_elements: Total stream length.
        n_distinct: Exact distinct count (<= n_elements).
        skew: Power-law exponent of the repetition profile.
        burst_mean: Mean burst length (>= 1; 1 degenerates to the
            uniformly shuffled stream).
        rng: Source of randomness.

    Returns:
        ``int64`` array of length ``n_elements``.

    Raises:
        DatasetError: For inconsistent parameters.
    """
    if n_distinct < 1:
        raise DatasetError(f"n_distinct must be >= 1, got {n_distinct}")
    if n_elements < n_distinct:
        raise DatasetError(
            f"n_elements ({n_elements}) must be >= n_distinct ({n_distinct})"
        )
    if burst_mean < 1.0:
        raise DatasetError(f"burst_mean must be >= 1, got {burst_mean}")

    # Exact occurrence counts: one guaranteed occurrence per id plus
    # Zipf-allocated extras.
    counts = np.ones(n_distinct, dtype=np.int64)
    extra_count = n_elements - n_distinct
    if extra_count:
        weights = zipf_weights(n_distinct, skew)
        extras = rng.choice(n_distinct, size=extra_count, p=weights)
        counts += np.bincount(extras, minlength=n_distinct)

    # Split each id's count into geometric bursts.
    p = 1.0 / burst_mean
    bursts: list[tuple[int, int]] = []  # (element, burst length)
    for element in range(n_distinct):
        remaining = int(counts[element])
        while remaining > 0:
            if burst_mean <= 1.0:
                size = 1
            else:
                size = min(int(rng.geometric(p)), remaining)
            bursts.append((element, size))
            remaining -= size

    order = rng.permutation(len(bursts))
    out = np.empty(n_elements, dtype=np.int64)
    pos = 0
    for index in order.tolist():
        element, size = bursts[index]
        out[pos : pos + size] = element
        pos += size
    assert pos == n_elements
    return out


def bursty_batch(
    n_elements: int,
    n_distinct: int,
    skew: float,
    burst_mean: float,
    num_sites: int,
    rng: np.random.Generator,
) -> EventBatch:
    """A :func:`bursty_stream` dealt to random sites as a columnar batch.

    Generation and dealing consume the rng in the same order as building
    the stream first and zipping tuple events after, so the columnar and
    tuple representations of one seed are the same workload.
    """
    stream = bursty_stream(n_elements, n_distinct, skew, burst_mean, rng)
    return dealt_batch(stream, num_sites, rng)


def mean_run_length(stream: np.ndarray) -> float:
    """Average length of maximal constant runs in ``stream``.

    A uniformly shuffled duplicate-heavy stream has run length ~1; a
    bursty stream's run length approaches its ``burst_mean``.
    """
    arr = np.asarray(stream)
    if arr.size == 0:
        raise DatasetError("cannot measure runs of an empty stream")
    changes = int(np.count_nonzero(arr[1:] != arr[:-1])) + 1
    return arr.size / changes
