"""Slotted arrival process for sliding-window experiments.

The paper (Section 5.3) derives sliding-window inputs by assigning, in each
timestep, 5 elements to 5 sites chosen randomly (with replacement — "it is
possible that multiple elements are observed by the same site in the same
timestep").  :class:`SlottedArrivals` generalizes the constant to
``per_slot`` and pre-computes all assignments vectorized.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import numpy as np

from ..core.events import EventBatch
from ..errors import ConfigurationError

__all__ = ["SlottedArrivals"]


class SlottedArrivals:
    """Pre-computed (slot, site, element) arrival schedule.

    Args:
        elements: The stream, in arrival order.
        num_sites: Number of sites elements are dealt to.
        per_slot: Elements delivered per timestep (paper uses 5).
        rng: Randomness for the per-element site choice.
    """

    __slots__ = ("elements", "sites", "per_slot", "num_slots")

    def __init__(
        self,
        elements: Sequence,
        num_sites: int,
        per_slot: int,
        rng: np.random.Generator,
    ) -> None:
        if num_sites < 1:
            raise ConfigurationError(f"num_sites must be >= 1, got {num_sites}")
        if per_slot < 1:
            raise ConfigurationError(f"per_slot must be >= 1, got {per_slot}")
        n = len(elements)
        self.elements = list(elements)
        self.sites = rng.integers(0, num_sites, size=n, dtype=np.int64).tolist()
        self.per_slot = per_slot
        self.num_slots = -(-n // per_slot)  # ceil division

    def __len__(self) -> int:
        return self.num_slots

    def slots(self) -> Iterator[tuple[int, list[tuple[int, object]]]]:
        """Yield ``(slot, [(site, element), ...])`` for each timestep.

        Slots are numbered from 1 so that "expiry = arrival + w" stays
        positive for every window size.
        """
        per = self.per_slot
        elements = self.elements
        sites = self.sites
        for slot in range(self.num_slots):
            lo = slot * per
            hi = min(lo + per, len(elements))
            yield slot + 1, [
                (sites[i], elements[i]) for i in range(lo, hi)
            ]

    def event_batch(self) -> EventBatch:
        """The whole schedule as one slot-stamped columnar batch.

        Feeding the result to ``observe_batch`` is equivalent to driving
        :meth:`slots` with ``advance(slot)`` + per-slot deliveries — the
        batch's slot column replays the same (1-based) slot boundaries.
        Requires integer element ids (exotic elements keep the tuple
        schedule of :meth:`slots`).
        """
        n = len(self.elements)
        if not n:
            # np.asarray([]) would infer float64; mirror slots(): nothing.
            empty = np.empty(0, dtype=np.int64)
            return EventBatch(empty, sites=empty, slots=empty)
        slots = np.arange(n, dtype=np.int64) // self.per_slot + 1
        return EventBatch(
            np.asarray(self.elements),
            sites=np.asarray(self.sites),
            slots=slots,
        )
