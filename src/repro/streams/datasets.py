"""Dataset specifications calibrated to the paper's Table 5.1.

The paper evaluates on two real datasets:

===========  ============  ===========  ==============
Dataset      # Elements    # Distinct   Distinct ratio
===========  ============  ===========  ==============
OC48         42,268,510    4,337,768    10.26 %
Enron        1,557,491     374,330      24.03 %
===========  ============  ===========  ==============

Pure-Python per-element processing makes the full sizes impractical for
routine runs, so each dataset is offered at several *scales* that preserve
the distinct ratio and skew.  ``paper`` scale matches Table 5.1 exactly
(expect long runtimes); experiments default to ``small``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DatasetError
from .synthetic import calibrated_stream

__all__ = ["DatasetSpec", "DATASETS", "SCALES", "get_dataset", "dataset_names"]

#: Known scale names, smallest to largest.
SCALES = ("tiny", "small", "medium", "paper")


@dataclass(frozen=True, slots=True)
class DatasetSpec:
    """A reproducible synthetic dataset profile.

    Attributes:
        name: Registry key, e.g. ``"oc48:small"``.
        family: Dataset family (``"oc48"`` or ``"enron"``).
        scale: Scale name from :data:`SCALES`.
        n_elements: Total stream length.
        n_distinct: Exact number of distinct elements.
        skew: Power-law repetition exponent.
    """

    name: str
    family: str
    scale: str
    n_elements: int
    n_distinct: int
    skew: float

    @property
    def distinct_ratio(self) -> float:
        """Fraction of stream positions that are first occurrences."""
        return self.n_distinct / self.n_elements

    def generate(self, rng: np.random.Generator) -> np.ndarray:
        """Materialize the stream as an ``int64`` id array."""
        return calibrated_stream(self.n_elements, self.n_distinct, self.skew, rng)


def _mk(family: str, scale: str, n: int, d: int, skew: float) -> DatasetSpec:
    return DatasetSpec(
        name=f"{family}:{scale}",
        family=family,
        scale=scale,
        n_elements=n,
        n_distinct=d,
        skew=skew,
    )


# Distinct ratios match the paper: OC48 10.26 %, Enron 24.03 %.
_SPECS = [
    _mk("oc48", "tiny", 4_000, 410, 0.9),
    _mk("oc48", "small", 60_000, 6_157, 0.9),
    _mk("oc48", "medium", 240_000, 24_628, 0.9),
    _mk("oc48", "paper", 42_268_510, 4_337_768, 0.9),
    _mk("enron", "tiny", 4_000, 961, 0.8),
    _mk("enron", "small", 60_000, 14_420, 0.8),
    _mk("enron", "medium", 240_000, 57_679, 0.8),
    _mk("enron", "paper", 1_557_491, 374_330, 0.8),
]

#: Registry of all dataset specs, keyed by ``"family:scale"``.
DATASETS: dict[str, DatasetSpec] = {spec.name: spec for spec in _SPECS}


def get_dataset(family: str, scale: str = "small") -> DatasetSpec:
    """Look up a dataset spec.

    Args:
        family: ``"oc48"`` or ``"enron"``.
        scale: One of :data:`SCALES`.

    Raises:
        DatasetError: For an unknown family/scale combination.
    """
    key = f"{family}:{scale}"
    spec = DATASETS.get(key)
    if spec is None:
        raise DatasetError(
            f"unknown dataset {key!r}; available: {sorted(DATASETS)}"
        )
    return spec


def dataset_names() -> list[str]:
    """All registered dataset keys."""
    return sorted(DATASETS)
