"""OC48-like IP flow stream.

The paper forms elements by concatenating sender and receiver IP addresses
of an OC48 peering-link trace.  This module maps calibrated synthetic ids to
deterministic, realistic-looking ``"src>dst"`` flow strings — useful for
the examples and for exercising the string-hashing path; the experiments
use raw integer ids for speed (hash distributions are identical).
"""

from __future__ import annotations

import numpy as np

from ..hashing.murmur import fmix64
from .datasets import DatasetSpec, get_dataset

__all__ = ["format_flow", "oc48_like", "flow_stream"]


def _ip_from(bits: int) -> str:
    """Format 32 bits as a dotted-quad IPv4 address."""
    return (
        f"{(bits >> 24) & 0xFF}.{(bits >> 16) & 0xFF}."
        f"{(bits >> 8) & 0xFF}.{bits & 0xFF}"
    )


def format_flow(flow_id: int) -> str:
    """Deterministically render a flow id as ``"srcIP>dstIP"``.

    The mapping is injective with overwhelming probability (64 mixed bits
    split into two addresses) and stable across runs.
    """
    mixed = fmix64(flow_id)
    return f"{_ip_from(mixed >> 32)}>{_ip_from(mixed & 0xFFFFFFFF)}"


def oc48_like(scale: str = "small") -> DatasetSpec:
    """The OC48-calibrated dataset spec at ``scale``."""
    return get_dataset("oc48", scale)


def flow_stream(
    scale: str, rng: np.random.Generator, as_strings: bool = False
) -> list:
    """Generate an OC48-like stream.

    Args:
        scale: Dataset scale (see :data:`repro.streams.datasets.SCALES`).
        rng: Source of randomness.
        as_strings: If True, return ``"srcIP>dstIP"`` strings; otherwise raw
            integer flow ids (faster).

    Returns:
        A Python list of elements (ints or strings).
    """
    ids = oc48_like(scale).generate(rng)
    if not as_strings:
        return ids.tolist()
    unique = {int(i): format_flow(int(i)) for i in np.unique(ids)}
    return [unique[int(i)] for i in ids]
