"""Distribution strategies: how stream elements are dealt to sites.

The paper's Section 5.1 studies three strategies — *flooding* (every
element to every site), *random* (one uniformly random site per element),
and *round-robin* — plus, in Section 5.2, a *dominate-rate* skew where site
0 is ``alpha`` times likelier than any other site to receive an element.

Single-site strategies produce a vectorized per-element site-id array;
flooding is flagged so drivers replicate each element to all sites.
"""

from __future__ import annotations

from typing import Optional, Protocol, runtime_checkable

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "Distributor",
    "FloodingDistributor",
    "RandomDistributor",
    "RoundRobinDistributor",
    "DominateDistributor",
    "make_distributor",
]


@runtime_checkable
class Distributor(Protocol):
    """Assigns each stream position to one site (or to all, if flooding)."""

    num_sites: int
    floods: bool

    def assignments(
        self, n: int, rng: Optional[np.random.Generator] = None
    ) -> Optional[np.ndarray]:
        """Per-position site ids (``int64`` array of length ``n``).

        Returns None for flooding distributors (every position goes to all
        sites).
        """
        ...


def _check_sites(num_sites: int) -> None:
    if num_sites < 1:
        raise ConfigurationError(f"num_sites must be >= 1, got {num_sites}")


class FloodingDistributor:
    """Every element is observed by every site (paper's "flooding")."""

    floods = True

    def __init__(self, num_sites: int) -> None:
        _check_sites(num_sites)
        self.num_sites = num_sites

    def assignments(
        self, n: int, rng: Optional[np.random.Generator] = None
    ) -> Optional[np.ndarray]:
        return None


class RandomDistributor:
    """Each element goes to one uniformly random site."""

    floods = False

    def __init__(self, num_sites: int) -> None:
        _check_sites(num_sites)
        self.num_sites = num_sites

    def assignments(
        self, n: int, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        if rng is None:
            raise ConfigurationError("RandomDistributor requires an rng")
        return rng.integers(0, self.num_sites, size=n, dtype=np.int64)


class RoundRobinDistributor:
    """Element ``j`` goes to site ``j mod k`` (paper's "round-robin")."""

    floods = False

    def __init__(self, num_sites: int) -> None:
        _check_sites(num_sites)
        self.num_sites = num_sites

    def assignments(
        self, n: int, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        return np.arange(n, dtype=np.int64) % self.num_sites


class DominateDistributor:
    """Site 0 dominates: it is ``alpha`` times likelier than any other site.

    With ``k`` sites, site 0 receives an element with probability
    ``alpha / (alpha + k - 1)`` and each other site with probability
    ``1 / (alpha + k - 1)`` (paper Section 5.2, "dominate rate").

    Args:
        num_sites: Number of sites (k >= 1).
        alpha: Dominate rate (>= 1; 1 reduces to uniform random).
    """

    floods = False

    def __init__(self, num_sites: int, alpha: float) -> None:
        _check_sites(num_sites)
        if alpha < 1:
            raise ConfigurationError(f"dominate rate must be >= 1, got {alpha}")
        self.num_sites = num_sites
        self.alpha = float(alpha)

    def assignments(
        self, n: int, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        if rng is None:
            raise ConfigurationError("DominateDistributor requires an rng")
        k = self.num_sites
        if k == 1:
            return np.zeros(n, dtype=np.int64)
        probs = np.full(k, 1.0 / (self.alpha + k - 1))
        probs[0] = self.alpha / (self.alpha + k - 1)
        return rng.choice(k, size=n, p=probs).astype(np.int64)


def make_distributor(
    name: str, num_sites: int, alpha: float = 1.0
) -> Distributor:
    """Construct a distributor by name.

    Args:
        name: ``"flooding"``, ``"random"``, ``"round_robin"``, or
            ``"dominate"``.
        num_sites: Number of sites.
        alpha: Dominate rate, used only by ``"dominate"``.

    Raises:
        ConfigurationError: For an unknown name.
    """
    if name == "flooding":
        return FloodingDistributor(num_sites)
    if name == "random":
        return RandomDistributor(num_sites)
    if name == "round_robin":
        return RoundRobinDistributor(num_sites)
    if name == "dominate":
        return DominateDistributor(num_sites, alpha)
    raise ConfigurationError(
        f"unknown distribution strategy {name!r}; expected flooding, random, "
        "round_robin, or dominate"
    )
