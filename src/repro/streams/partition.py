"""Distribution strategies: how stream elements are dealt to sites.

The paper's Section 5.1 studies three strategies — *flooding* (every
element to every site), *random* (one uniformly random site per element),
and *round-robin* — plus, in Section 5.2, a *dominate-rate* skew where site
0 is ``alpha`` times likelier than any other site to receive an element.

Single-site strategies produce a vectorized per-element site-id array;
flooding is flagged so drivers replicate each element to all sites.

:class:`HashDistributor` is the *content-addressed* strategy the runtime
layer builds on: an element's destination is a pure function of the
element (an independent routing hash), so the same key always lands in the
same partition — the invariant sharded scale-out
(:mod:`repro.runtime.sharded`) and the :class:`~repro.runtime.engine.Engine`
hash-routing policy both rely on.
"""

from __future__ import annotations

from typing import Optional, Protocol, runtime_checkable

import numpy as np

from ..errors import ConfigurationError
from ..hashing.murmur import fmix64
from ..hashing.unit import UnitHasher, unit_hash_vector

__all__ = [
    "Distributor",
    "FloodingDistributor",
    "RandomDistributor",
    "RoundRobinDistributor",
    "DominateDistributor",
    "HashDistributor",
    "make_distributor",
]

#: Salt decorrelating routing hashes from the sampling hash family: the
#: same user seed must not make "which partition" and "is it sampled"
#: statistically dependent decisions.
_ROUTE_SALT = 0x5EED0A0B0C0D0E0F


@runtime_checkable
class Distributor(Protocol):
    """Assigns each stream position to one site (or to all, if flooding)."""

    num_sites: int
    floods: bool

    def assignments(
        self, n: int, rng: Optional[np.random.Generator] = None
    ) -> Optional[np.ndarray]:
        """Per-position site ids (``int64`` array of length ``n``).

        Returns None for flooding distributors (every position goes to all
        sites).
        """
        ...


def _check_sites(num_sites: int) -> None:
    if num_sites < 1:
        raise ConfigurationError(f"num_sites must be >= 1, got {num_sites}")


class FloodingDistributor:
    """Every element is observed by every site (paper's "flooding")."""

    floods = True

    def __init__(self, num_sites: int) -> None:
        _check_sites(num_sites)
        self.num_sites = num_sites

    def assignments(
        self, n: int, rng: Optional[np.random.Generator] = None
    ) -> Optional[np.ndarray]:
        return None


class RandomDistributor:
    """Each element goes to one uniformly random site."""

    floods = False

    def __init__(self, num_sites: int) -> None:
        _check_sites(num_sites)
        self.num_sites = num_sites

    def assignments(
        self, n: int, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        if rng is None:
            raise ConfigurationError("RandomDistributor requires an rng")
        return rng.integers(0, self.num_sites, size=n, dtype=np.int64)


class RoundRobinDistributor:
    """Element ``j`` goes to site ``j mod k`` (paper's "round-robin")."""

    floods = False

    def __init__(self, num_sites: int) -> None:
        _check_sites(num_sites)
        self.num_sites = num_sites

    def assignments(
        self, n: int, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        return np.arange(n, dtype=np.int64) % self.num_sites


class DominateDistributor:
    """Site 0 dominates: it is ``alpha`` times likelier than any other site.

    With ``k`` sites, site 0 receives an element with probability
    ``alpha / (alpha + k - 1)`` and each other site with probability
    ``1 / (alpha + k - 1)`` (paper Section 5.2, "dominate rate").

    Args:
        num_sites: Number of sites (k >= 1).
        alpha: Dominate rate (>= 1; 1 reduces to uniform random).
    """

    floods = False

    def __init__(self, num_sites: int, alpha: float) -> None:
        _check_sites(num_sites)
        if alpha < 1:
            raise ConfigurationError(f"dominate rate must be >= 1, got {alpha}")
        self.num_sites = num_sites
        self.alpha = float(alpha)

    def assignments(
        self, n: int, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        if rng is None:
            raise ConfigurationError("DominateDistributor requires an rng")
        k = self.num_sites
        if k == 1:
            return np.zeros(n, dtype=np.int64)
        probs = np.full(k, 1.0 / (self.alpha + k - 1))
        probs[0] = self.alpha / (self.alpha + k - 1)
        return rng.choice(k, size=n, p=probs).astype(np.int64)


class HashDistributor:
    """Content-addressed partitioning: a key's destination is fixed.

    Element ``e`` goes to partition ``floor(h_route(e) * num_sites)``
    where ``h_route`` is a unit hash seeded *independently* of the
    sampling hash (same master seed, salted), so routing never correlates
    with sample membership.  Unlike the positional strategies the
    assignment is a function of the element, not the stream position —
    use :meth:`assignments_for` (or :meth:`assign_one`); the positional
    :meth:`assignments` is rejected by construction.

    Args:
        num_sites: Number of partitions (sites or shard groups).
        seed: Master seed the routing seed is derived from.
        algorithm: Hash algorithm (``"mix64"`` vectorizes over integer
            batches; match the sampler's algorithm so anything the
            sampler can hash, the router can too).
        salt: Distinguishes stacked routing layers.  Two distributors
            with the same seed and salt are the same hash function, so a
            deployment that routes twice (Engine picks the site, a
            sharded sampler picks the coordinator group) must give each
            layer its own salt or the two decisions collapse into one
            and every group sees only a slice of the sites.
    """

    floods = False

    def __init__(
        self,
        num_sites: int,
        seed: int = 0,
        algorithm: str = "murmur2",
        salt: int = _ROUTE_SALT,
    ) -> None:
        _check_sites(num_sites)
        self.num_sites = num_sites
        self.seed = int(seed)
        self.algorithm = algorithm
        self._hasher = UnitHasher(fmix64(self.seed ^ salt), algorithm)

    def assignments(
        self, n: int, rng: Optional[np.random.Generator] = None
    ) -> Optional[np.ndarray]:
        raise ConfigurationError(
            "HashDistributor is content-addressed; use assignments_for(items)"
        )

    def assignments_for(self, items) -> np.ndarray:
        """Per-element partition ids (``int64`` array, len(items))."""
        if not isinstance(items, (list, tuple)):
            items = list(items)
        hashes = unit_hash_vector(self._hasher, items)
        if hashes is None:
            hashes = np.asarray(self._hasher.unit_many(items))
        return self._partition_ids(hashes)

    def assignments_for_batch(self, batch) -> np.ndarray:
        """Partition ids for a columnar :class:`~repro.core.events.EventBatch`.

        Routes off the batch's cached hash column for this distributor's
        hasher — one vectorized pass per batch per routing layer, shared
        with every row subset derived from it.
        """
        return self._partition_ids(batch.hash_column(self._hasher))

    def _partition_ids(self, hashes) -> np.ndarray:
        ids = (np.asarray(hashes) * self.num_sites).astype(np.int64)
        # h < 1 guarantees ids < num_sites mathematically; the clip only
        # guards float rounding at the very top of the unit interval.
        return np.minimum(ids, self.num_sites - 1)

    def assign_one(self, item) -> int:
        """Partition id for a single element (matches the batch path)."""
        return min(
            int(self._hasher.unit(item) * self.num_sites), self.num_sites - 1
        )


def make_distributor(
    name: str, num_sites: int, alpha: float = 1.0, seed: int = 0
) -> Distributor:
    """Construct a distributor by name.

    Args:
        name: ``"flooding"``, ``"random"``, ``"round_robin"``,
            ``"dominate"``, or ``"hash"``.
        num_sites: Number of sites.
        alpha: Dominate rate, used only by ``"dominate"``.
        seed: Routing seed, used only by ``"hash"``.

    Raises:
        ConfigurationError: For an unknown name.
    """
    if name == "flooding":
        return FloodingDistributor(num_sites)
    if name == "random":
        return RandomDistributor(num_sites)
    if name == "round_robin":
        return RoundRobinDistributor(num_sites)
    if name == "dominate":
        return DominateDistributor(num_sites, alpha)
    if name == "hash":
        return HashDistributor(num_sites, seed=seed)
    raise ConfigurationError(
        f"unknown distribution strategy {name!r}; expected flooding, random, "
        "round_robin, dominate, or hash"
    )
