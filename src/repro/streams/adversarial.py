"""The Lemma 9 lower-bound adversary.

The paper's lower bound constructs an input where, in every round, a brand
new element (never seen before, and avoiding each algorithm's "free"
element) is delivered to *all* ``k`` sites.  Against the paper's algorithm
this forces the expected message count to at least
``(ks/2)(H_d − H_s + 1)``, within a factor four of the algorithm's upper
bound ``2ks(1 + ln(d/s))``.

For experiments we realize the construction concretely: a fresh element per
round, flooded to every site — i.e. an all-distinct stream under the
flooding distributor.  (The element-avoidance technicality in Lemma 7 only
matters against algorithms with hard-coded "silent" elements; ours has
none.)
"""

from __future__ import annotations

import numpy as np

from .partition import FloodingDistributor
from .synthetic import all_distinct_stream

__all__ = ["adversarial_input"]


def adversarial_input(
    n_rounds: int, num_sites: int
) -> tuple[np.ndarray, FloodingDistributor]:
    """Build the Lemma 9 adversarial input.

    Args:
        n_rounds: Number of rounds d (one fresh distinct element each).
        num_sites: Number of sites k.

    Returns:
        ``(elements, distributor)`` — an all-distinct stream of length
        ``n_rounds`` and a flooding distributor over ``num_sites`` sites.
    """
    return all_distinct_stream(n_rounds), FloodingDistributor(num_sites)
