"""Synthetic stream generators.

The paper's datasets (CAIDA OC48 IP pairs, Enron e-mail pairs) are not
redistributable, so experiments run on synthetic streams *calibrated* to
the statistics that matter for message complexity: total element count,
distinct element count, and a heavy-tailed repetition profile.  See
DESIGN.md §2 for the substitution argument.

All generators are NumPy-vectorized and deterministic given a
``numpy.random.Generator``.
"""

from __future__ import annotations

import numpy as np

from ..core.events import EventBatch
from ..errors import DatasetError

__all__ = [
    "zipf_weights",
    "calibrated_stream",
    "uniform_stream",
    "all_distinct_stream",
    "dealt_batch",
]


def zipf_weights(count: int, skew: float) -> np.ndarray:
    """Normalized power-law weights ``w_r ∝ 1/r^skew`` over ranks 1..count.

    Args:
        count: Number of ranks.
        skew: Power-law exponent; 0 gives uniform weights.

    Returns:
        Float64 array of length ``count`` summing to 1.
    """
    if count < 1:
        raise DatasetError(f"need at least one rank, got {count}")
    if skew < 0:
        raise DatasetError(f"skew must be non-negative, got {skew}")
    ranks = np.arange(1, count + 1, dtype=np.float64)
    weights = ranks**-skew
    weights /= weights.sum()
    return weights


def calibrated_stream(
    n_elements: int,
    n_distinct: int,
    skew: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Generate a stream with *exactly* ``n_distinct`` distinct elements.

    Construction: every id in ``[0, n_distinct)`` appears at least once; the
    remaining ``n_elements - n_distinct`` occurrences are allocated across
    ids with Zipf(``skew``) probabilities; the multiset is then uniformly
    shuffled.  The realized distinct count is exact (not just in
    expectation), which keeps Table 5.1 reproducible to the digit.

    Args:
        n_elements: Total stream length.
        n_distinct: Number of distinct element ids (must be <= n_elements).
        skew: Power-law exponent of the repetition profile.
        rng: Source of randomness.

    Returns:
        ``int64`` array of length ``n_elements`` with ids in
        ``[0, n_distinct)``.

    Raises:
        DatasetError: If the counts are inconsistent.
    """
    if n_distinct < 1:
        raise DatasetError(f"n_distinct must be >= 1, got {n_distinct}")
    if n_elements < n_distinct:
        raise DatasetError(
            f"n_elements ({n_elements}) must be >= n_distinct ({n_distinct})"
        )
    base = np.arange(n_distinct, dtype=np.int64)
    extra_count = n_elements - n_distinct
    if extra_count:
        weights = zipf_weights(n_distinct, skew)
        extras = rng.choice(n_distinct, size=extra_count, p=weights)
        stream = np.concatenate([base, extras.astype(np.int64)])
    else:
        stream = base
    rng.shuffle(stream)
    return stream


def uniform_stream(
    n_elements: int, universe: int, rng: np.random.Generator
) -> np.ndarray:
    """Stream of ``n_elements`` ids drawn uniformly from ``[0, universe)``.

    The realized distinct count is random (coupon-collector profile).
    """
    if universe < 1:
        raise DatasetError(f"universe must be >= 1, got {universe}")
    return rng.integers(0, universe, size=n_elements, dtype=np.int64)


def all_distinct_stream(n_elements: int) -> np.ndarray:
    """Stream ``0, 1, ..., n_elements - 1`` — every element distinct.

    The workload on which the paper's message bounds are exact; used by the
    theory-validation tests and the Lemma 9 adversary.
    """
    return np.arange(n_elements, dtype=np.int64)


def dealt_batch(
    elements: np.ndarray, num_sites: int, rng: np.random.Generator
) -> EventBatch:
    """Deal an element column to uniformly random sites, columnar.

    The zero-tuple successor of ``list(zip(sites, elements.tolist()))``:
    pairs the generated id column with a random site column in one
    :class:`~repro.core.events.EventBatch`, so the workload reaches
    ``observe_batch`` without ever materializing per-event tuples.  The
    site draw consumes the rng exactly like the tuple dealing helpers
    (``rng.integers(0, num_sites, n)``), so tuple and columnar builds of
    the same seed describe the same workload.
    """
    if num_sites < 1:
        raise DatasetError(f"num_sites must be >= 1, got {num_sites}")
    elements = np.asarray(elements, dtype=np.int64)
    sites = rng.integers(0, num_sites, elements.size)
    return EventBatch(elements, sites=sites)
