"""Stream generation: calibrated datasets, distributors, arrival processes."""

from ..core.events import EventBatch
from .adversarial import adversarial_input
from .bursty import bursty_batch, bursty_stream, mean_run_length
from .datasets import DATASETS, SCALES, DatasetSpec, dataset_names, get_dataset
from .email import email_stream, enron_like, format_email_pair
from .ipstream import flow_stream, format_flow, oc48_like
from .partition import (
    Distributor,
    DominateDistributor,
    FloodingDistributor,
    HashDistributor,
    RandomDistributor,
    RoundRobinDistributor,
    make_distributor,
)
from .slotted import SlottedArrivals
from .synthetic import (
    all_distinct_stream,
    calibrated_stream,
    dealt_batch,
    uniform_stream,
    zipf_weights,
)

__all__ = [
    "EventBatch",
    "DatasetSpec",
    "DATASETS",
    "SCALES",
    "get_dataset",
    "dataset_names",
    "calibrated_stream",
    "uniform_stream",
    "all_distinct_stream",
    "dealt_batch",
    "zipf_weights",
    "format_flow",
    "oc48_like",
    "flow_stream",
    "format_email_pair",
    "enron_like",
    "email_stream",
    "Distributor",
    "FloodingDistributor",
    "RandomDistributor",
    "RoundRobinDistributor",
    "DominateDistributor",
    "HashDistributor",
    "make_distributor",
    "SlottedArrivals",
    "adversarial_input",
    "bursty_stream",
    "bursty_batch",
    "mean_run_length",
]
