#!/usr/bin/env python
"""Distinct counting from the distributed sample — KMV in action.

The coordinator's bottom-s sketch doubles as an F0 (distinct count)
estimator: d̂ = (s-1)/u where u is the s-th smallest hash.  This example
sweeps the sample size and shows the classic 1/sqrt(s) error decay,
entirely from samples maintained with O(ks log(d/s)) messages.

Usage::

    python examples/distinct_count_estimation.py
"""

from __future__ import annotations

import numpy as np

from repro import make_sampler
from repro.estimators import estimate_from_sampler
from repro.streams import get_dataset

NUM_SITES = 4
SAMPLE_SIZES = (16, 64, 256)
RUNS = 5


def main() -> None:
    spec = get_dataset("oc48", "tiny")
    print(f"stream: {spec.n_elements:,} elements, "
          f"{spec.n_distinct:,} distinct (ground truth)\n")
    print(f"{'s':>5} {'mean d̂':>12} {'mean |err|':>12} "
          f"{'theory RSE':>12} {'messages':>10}")
    for s in SAMPLE_SIZES:
        estimates = []
        errors = []
        messages = []
        for run in range(RUNS):
            rng = np.random.default_rng(run)
            stream = spec.generate(rng).tolist()
            system = make_sampler(
                "infinite", num_sites=NUM_SITES, sample_size=s, seed=run * 31 + 1
            )
            sites = rng.integers(0, NUM_SITES, len(stream)).tolist()
            system.observe_batch(zip(sites, stream))
            est = estimate_from_sampler(system)
            estimates.append(est.estimate)
            errors.append(abs(est.estimate - spec.n_distinct) / spec.n_distinct)
            messages.append(system.stats().messages_total)
        theory = 1.0 / np.sqrt(max(s - 2, 1))
        print(
            f"{s:>5} {np.mean(estimates):>12,.0f} {np.mean(errors):>11.1%} "
            f"{theory:>11.1%} {np.mean(messages):>10,.0f}"
        )
    print("\nobserved error tracks the 1/sqrt(s-2) theory; message cost "
          "grows ~linearly in s (Figure 5.2's shape)")


if __name__ == "__main__":
    main()
