#!/usr/bin/env python
"""Quickstart: a 60-second tour of the public API.

Every sampler is built through one front door — ``make_sampler`` — and
drives through one lifecycle: ``observe``/``observe_batch`` ingest,
``advance`` moves slotted time, ``sample()`` returns a ``SampleResult``,
``stats()`` returns the uniform cost counters (messages are the paper's
currency).

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import make_sampler


def main() -> None:
    rng = np.random.default_rng(7)

    # ------------------------------------------------------------------
    # 1. Infinite window: a distinct sample of everything seen so far.
    # ------------------------------------------------------------------
    print("=== infinite window ===")
    system = make_sampler("infinite", num_sites=5, sample_size=8, seed=42)
    # A skewed workload: user 'hotshot' produces 90% of the traffic.
    users = ["hotshot"] * 900 + [f"user{i}" for i in range(100)]
    rng.shuffle(users)
    for user in users:
        system.observe(int(rng.integers(0, 5)), user)

    result = system.sample()
    stats = system.stats()
    print(f"stream: {len(users)} events, 101 distinct users")
    print(f"sample ({len(result)} distinct users): {list(result.items)}")
    print(f"acceptance threshold u: {result.threshold:.4f}")
    print(f"messages exchanged: {stats.messages_total} "
          f"({stats.messages_to_coordinator} up, {stats.messages_to_sites} down)")
    hot = sum(member == "hotshot" for member in result)
    print(f"'hotshot' (90% of events) holds {hot} of {len(result)} "
          "sample slots — frequency does not bias a distinct sample\n")

    # ------------------------------------------------------------------
    # 2. Sliding window: only the most recent w time slots matter.
    # ------------------------------------------------------------------
    print("=== sliding window (w=20 slots) ===")
    window_system = make_sampler("sliding", num_sites=3, window=20, seed=42)
    for slot in range(1, 101):
        window_system.advance(slot)
        window_system.observe_batch(
            (int(rng.integers(0, 3)), f"flow{int(rng.integers(0, 50))}")
            for _ in range(3)
        )
        if slot % 25 == 0:
            print(f"slot {slot:3d}: window sample = "
                  f"{window_system.sample().first}")
    window_stats = window_system.stats()
    print(f"messages exchanged: {window_stats.messages_total}")
    print(f"per-site candidate sets: {list(window_stats.per_site_memory)} "
          "(O(log window) — not O(window))\n")

    # ------------------------------------------------------------------
    # 3. With replacement: s independent uniform draws.
    # ------------------------------------------------------------------
    print("=== with replacement (5 independent draws) ===")
    wr = make_sampler("with-replacement", num_sites=2, sample_size=5, seed=42)
    wr.observe_batch((item % 2, f"item{item}") for item in range(40))
    print(f"draws: {list(wr.sample().items)}")
    print(f"messages exchanged: {wr.stats().messages_total}")


if __name__ == "__main__":
    main()
