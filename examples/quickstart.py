#!/usr/bin/env python
"""Quickstart: a 60-second tour of the public API.

Runs the three sampler families on a toy workload and prints what each
maintains and what it costs in messages — the paper's currency.

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    infinite_window_sampler,
    sliding_window_sampler,
    with_replacement_sampler,
)


def main() -> None:
    rng = np.random.default_rng(7)

    # ------------------------------------------------------------------
    # 1. Infinite window: a distinct sample of everything seen so far.
    # ------------------------------------------------------------------
    print("=== infinite window ===")
    system = infinite_window_sampler(num_sites=5, sample_size=8, seed=42)
    # A skewed workload: user 'hotshot' produces 90% of the traffic.
    users = ["hotshot"] * 900 + [f"user{i}" for i in range(100)]
    rng.shuffle(users)
    for user in users:
        system.observe(int(rng.integers(0, 5)), user)

    print(f"stream: {len(users)} events, 101 distinct users")
    print(f"sample ({len(system.sample())} distinct users): {system.sample()}")
    print(f"messages exchanged: {system.total_messages}")
    hot = sum(member == "hotshot" for member in system.sample())
    print(f"'hotshot' (90% of events) holds {hot} of {len(system.sample())} "
          "sample slots — frequency does not bias a distinct sample\n")

    # ------------------------------------------------------------------
    # 2. Sliding window: only the most recent w time slots matter.
    # ------------------------------------------------------------------
    print("=== sliding window (w=20 slots) ===")
    window_system = sliding_window_sampler(num_sites=3, window=20, seed=42)
    for slot in range(1, 101):
        arrivals = [
            (int(rng.integers(0, 3)), f"flow{int(rng.integers(0, 50))}")
            for _ in range(3)
        ]
        window_system.process_slot(slot, arrivals)
        if slot % 25 == 0:
            print(f"slot {slot:3d}: window sample = {window_system.query()}")
    print(f"messages exchanged: {window_system.total_messages}")
    print(f"per-site candidate sets: {window_system.per_site_memory()} "
          "(O(log window) — not O(window))\n")

    # ------------------------------------------------------------------
    # 3. With replacement: s independent uniform draws.
    # ------------------------------------------------------------------
    print("=== with replacement (5 independent draws) ===")
    wr = with_replacement_sampler(num_sites=2, sample_size=5, seed=42)
    for item in range(40):
        wr.observe(item % 2, f"item{item}")
    print(f"draws: {wr.sample()}")
    print(f"messages exchanged: {wr.total_messages}")


if __name__ == "__main__":
    main()
