#!/usr/bin/env python
"""Distributed network-flow monitoring — the paper's OC48 scenario.

Five measurement points on a backbone each observe a share of the
src>dst flow stream.  A central coordinator continuously maintains a
distinct sample of *flows* (not packets!) and answers, at query time,
predicate questions the sample was never built for:

* how many distinct flows are there?            (KMV estimator)
* what fraction of distinct flows touch subnet 10.x?   (predicate)
* how does message cost compare to the theory bound?

Usage::

    python examples/network_monitoring.py [--scale tiny|small]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import make_sampler
from repro.analysis import upper_bound_observation1
from repro.estimators import (
    estimate_count,
    estimate_fraction,
    estimate_from_sampler,
)
from repro.streams import RandomDistributor, flow_stream, get_dataset

NUM_SITES = 5
SAMPLE_SIZE = 64


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="tiny", choices=["tiny", "small"])
    args = parser.parse_args()

    rng = np.random.default_rng(2015)
    flows = flow_stream(args.scale, rng, as_strings=True)
    spec = get_dataset("oc48", args.scale)
    print(f"OC48-like stream: {len(flows):,} packets, "
          f"{spec.n_distinct:,} distinct flows")

    system = make_sampler(
        "infinite", num_sites=NUM_SITES, sample_size=SAMPLE_SIZE, seed=1
    )
    sites = RandomDistributor(NUM_SITES).assignments(len(flows), rng).tolist()
    for flow, site in zip(flows, sites):
        system.observe(site, flow)

    # --- distinct count ----------------------------------------------------
    count = estimate_from_sampler(system)
    err = abs(count.estimate - spec.n_distinct) / spec.n_distinct
    print(f"\ndistinct flows: estimated {count.estimate:,.0f} "
          f"(true {spec.n_distinct:,}, error {err:.1%})")
    print(f"  95% interval [{count.low:,.0f}, {count.high:,.0f}]")

    # --- predicate queries, decided *after* the stream was consumed --------
    def low_half_source(flow: str) -> bool:
        """Source address in 0.0.0.0/1 (first octet < 128) — ~half of flows."""
        return int(flow.split(".", 1)[0]) < 128

    frac = estimate_fraction(system.sample().items, low_half_source)
    print(f"\nfraction of distinct flows sourced in 0.0.0.0/1: "
          f"{frac.value:.2%} ± {1.96 * frac.std_error:.2%} (truth ≈ 50%)")
    matching = estimate_count(system.sample().items, low_half_source, count)
    print(f"estimated matching distinct flows: {matching.value:,.0f} "
          f"[{matching.low:,.0f}, {matching.high:,.0f}]")

    # --- communication cost vs theory ---------------------------------------
    per_site = [len({f for f, s in zip(flows, sites) if s == i})
                for i in range(NUM_SITES)]
    bound = upper_bound_observation1(NUM_SITES, SAMPLE_SIZE, per_site)
    print(f"\nmessages: {system.stats().messages_total:,} "
          f"(Observation 1 first-occurrence bound: {bound:,.0f} — repeats of "
          "in-sample flows add a little on duplicate-heavy streams, see "
          "EXPERIMENTS.md; "
          f"naive 'ship every packet' would be {2 * len(flows):,})")


if __name__ == "__main__":
    main()
