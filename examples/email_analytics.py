#!/usr/bin/env python
"""Sliding-window e-mail analytics — the paper's Enron scenario.

Mail relays at three data centers observe sender->recipient events.
Compliance wants a *recent* picture: a uniform sample of the distinct
correspondent pairs active in the last ``w`` time slots, maintained
continuously with minimal cross-site traffic.

Demonstrates the sliding-window samplers (s = 1 lazy-feedback and the
bottom-s generalization), window churn, and the memory/message costs.

Usage::

    python examples/email_analytics.py [--window 200] [--sample-size 8]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import make_sampler
from repro.analysis import harmonic
from repro.streams import SlottedArrivals, email_stream

NUM_SITES = 3


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--window", type=int, default=200)
    parser.add_argument("--sample-size", type=int, default=8)
    args = parser.parse_args()

    rng = np.random.default_rng(4)
    pairs = email_stream("tiny", rng, as_strings=True)
    schedule = SlottedArrivals(pairs, NUM_SITES, per_slot=5, rng=rng)
    print(f"Enron-like stream: {len(pairs):,} messages over "
          f"{schedule.num_slots:,} time slots, window w={args.window}")

    # s = 1: the paper-faithful lazy-feedback protocol.
    single = make_sampler(
        "sliding", num_sites=NUM_SITES, window=args.window, seed=9
    )
    # s > 1: the bottom-s lazy-feedback generalization.
    multi = make_sampler(
        "sliding",
        num_sites=NUM_SITES,
        window=args.window,
        sample_size=args.sample_size,
        seed=9,
    )

    peak_memory = 0
    for slot, arrivals in schedule.slots():
        for sampler in (single, multi):
            sampler.advance(slot)
            sampler.observe_batch(arrivals)
        peak_memory = max(peak_memory, max(single.stats().per_site_memory))
        if slot % (schedule.num_slots // 4) == 0:
            print(f"\nslot {slot:4d}:")
            print(f"  window sample (s=1): {single.sample().first}")
            sample = multi.sample()
            print(f"  window sample (s={args.sample_size}): "
                  f"{len(sample)} pairs, e.g. {list(sample.items[:3])}")

    print("\n--- costs ---")
    print(f"s=1 lazy feedback : {single.stats().messages_total:,} messages, "
          f"peak per-site memory {peak_memory} entries "
          f"(Lemma 10 predicts ~H_w = {harmonic(args.window):.1f} on average)")
    print(f"s={args.sample_size} lazy feedback : {multi.stats().messages_total:,} messages")
    print("note: a naive approach would ship every event "
          f"({len(pairs):,} messages) or store the whole window per site "
          f"({args.window * 5 // NUM_SITES}+ entries)")


if __name__ == "__main__":
    main()
