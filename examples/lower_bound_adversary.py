#!/usr/bin/env python
"""The Lemma 9 adversary, live.

Constructs the paper's lower-bound input — a brand-new element flooded to
every site each round — and runs the real algorithm against it, printing
measured messages next to the Lemma 4 upper bound and Lemma 9 lower
bound.  The measured cost hugs the upper bound, pinning the optimality
gap at the paper's factor ≈ 4.

Usage::

    python examples/lower_bound_adversary.py
"""

from __future__ import annotations

import numpy as np

from repro import make_sampler
from repro.analysis import lower_bound_total, upper_bound_total
from repro.hashing import unit_hash_array
from repro.streams import adversarial_input

K = 5
S = 10
ROUNDS = (100, 300, 1000, 3000, 10_000)
RUNS = 5


def measure(d: int) -> float:
    elements, _ = adversarial_input(d, K)
    totals = []
    for seed in range(RUNS):
        system = make_sampler(
            "infinite", num_sites=K, sample_size=S, seed=seed, algorithm="mix64"
        )
        hashes = unit_hash_array(elements, seed)
        for element, h in zip(elements.tolist(), hashes.tolist()):
            system.flood_hashed(element, h)
        totals.append(system.stats().messages_total)
    return float(np.mean(totals))


def main() -> None:
    print(f"adversarial input: fresh element flooded to all k={K} sites "
          f"each round; s={S}; mean of {RUNS} runs\n")
    print(f"{'d':>7} {'measured':>10} {'upper (L4)':>11} "
          f"{'lower (L9)':>11} {'meas/lower':>11}")
    for d in ROUNDS:
        measured = measure(d)
        upper = upper_bound_total(K, S, d)
        lower = lower_bound_total(K, S, d)
        print(f"{d:>7,} {measured:>10,.0f} {upper:>11,.0f} "
              f"{lower:>11,.0f} {measured / lower:>11.2f}")
    print("\nmeasured ≈ upper bound (this input is the algorithm's worst "
          "case); measured/lower ≈ 4 = the paper's optimality gap")


if __name__ == "__main__":
    main()
