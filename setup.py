"""Legacy setup shim.

Needed because the offline execution environment lacks the ``wheel``
package, which the PEP 517 editable-install path requires.  All real
metadata lives in pyproject.toml; install with::

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
